(** Process resource gauges (Linux, via [/proc/self/status]).

    One sample point today: the peak resident set size, the memory
    headline of the scaling sweep (BENCH_adversary.json) and of the CLI
    [--metrics] envelope.  Peak RSS is scheduling- and
    allocator-dependent, so the gauge is {!Control.Volatile} — reported,
    never compared across runs. *)

val peak_rss_kb : unit -> int option
(** [VmHWM] from [/proc/self/status] in kilobytes; [None] where procfs
    is absent (non-Linux) or unparsable.  Reads afresh on every call. *)

val sample : unit -> unit
(** Record the current peak RSS into the ["process/peak_rss_kb"] gauge.
    A no-op while telemetry is disabled or when {!peak_rss_kb} is
    [None] — call it {e before} switching telemetry off when closing an
    envelope. *)
