type metric =
  | Counter of Counter.t
  | Gauge of Gauge.t
  | Histogram of Histogram.t
  | Span of Span.t

type value = Count of int | Value of float | Dist of Histogram.snapshot
type snapshot = { values : (string * value) list; timings : (string * value) list }

let mutex = Mutex.create ()
let table : (string, metric) Hashtbl.t = Hashtbl.create 64

let intern path make unwrap describe =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      match Hashtbl.find_opt table path with
      | Some m -> (
          match unwrap m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Telemetry.Registry: %s already registered with another \
                    metric type (wanted %s)"
                   path describe))
      | None ->
          let v = make () in
          v)

let counter ?(kind = Control.Stable) path =
  intern path
    (fun () ->
      let c = Counter.make ~path ~kind in
      Hashtbl.replace table path (Counter c);
      c)
    (function Counter c -> Some c | _ -> None)
    "counter"

let gauge ?(kind = Control.Volatile) path =
  intern path
    (fun () ->
      let g = Gauge.make ~path ~kind in
      Hashtbl.replace table path (Gauge g);
      g)
    (function Gauge g -> Some g | _ -> None)
    "gauge"

let histogram ?(kind = Control.Stable) path =
  intern path
    (fun () ->
      let h = Histogram.make ~path ~kind in
      Hashtbl.replace table path (Histogram h);
      h)
    (function Histogram h -> Some h | _ -> None)
    "histogram"

let span ?(kind = Control.Stable) path =
  intern path
    (fun () ->
      let s = Span.make ~path ~kind in
      Hashtbl.replace table path (Span s);
      s)
    (function Span s -> Some s | _ -> None)
    "span"

let snapshot () =
  Mutex.lock mutex;
  let metrics = Hashtbl.fold (fun _ m acc -> m :: acc) table [] in
  Mutex.unlock mutex;
  let values = ref [] and timings = ref [] in
  let put kind entry =
    match (kind : Control.kind) with
    | Stable -> values := entry :: !values
    | Volatile -> timings := entry :: !timings
  in
  List.iter
    (function
      | Counter c ->
          let v = Counter.value c in
          if v <> 0 then put (Counter.kind c) (Counter.path c, Count v)
      | Gauge g ->
          let v = Gauge.value g in
          if Float.is_finite v then put (Gauge.kind g) (Gauge.path g, Value v)
      | Histogram h ->
          let snap = Histogram.snapshot h in
          if snap.Histogram.count > 0 then
            put (Histogram.kind h) (Histogram.path h, Dist snap)
      | Span s ->
          if Span.count s > 0 then begin
            put (Span.kind s) (Span.path s ^ "/calls", Count (Span.count s));
            timings := (Span.path s ^ "/total_ns", Count (Span.total_ns s)) :: !timings
          end)
    metrics;
  let by_path (a, _) (b, _) = compare a b in
  { values = List.sort by_path !values; timings = List.sort by_path !timings }

let reset () =
  Mutex.lock mutex;
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> Counter.reset c
      | Gauge g -> Gauge.reset g
      | Histogram h -> Histogram.reset h
      | Span s -> Span.reset s)
    table;
  Mutex.unlock mutex;
  Trace.reset ()
