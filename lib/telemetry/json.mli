(** A minimal JSON document builder (no third-party dependency).

    Only what the telemetry exporters and {!Placement.Codec}'s versioned
    envelope need: construction and deterministic printing.  Object keys
    are emitted in the order given — callers sort when they want sorted
    output. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** printed with [%.6g]; non-finite values as [null] *)
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-escape the contents (no surrounding quotes). *)

val to_string : ?indent:int -> t -> string
(** Render; [indent] (spaces per level, e.g. 2) selects pretty-printed
    output with one scalar per line, otherwise compact one-line JSON. *)
