type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let to_string ?indent t =
  let buf = Buffer.create 256 in
  let pad level =
    match indent with
    | None -> ()
    | Some w ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (level * w) ' ')
  in
  let sep () = Buffer.add_string buf (if indent = None then "," else ",") in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        Buffer.add_string buf (if Float.is_finite f then float_str f else "null")
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then sep ();
            pad (level + 1);
            go (level + 1) item)
          items;
        pad level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (key, value) ->
            if i > 0 then sep ();
            pad (level + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape key);
            Buffer.add_string buf "\": ";
            go (level + 1) value)
          fields;
        pad level;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf
