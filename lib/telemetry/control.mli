(** Global collection switches and the clock.

    Telemetry is disabled by default: every instrumentation primitive
    ({!Counter.add}, {!Span.time}, ...) starts with one atomic-bool read
    and branches away, so dormant instrumentation costs nanoseconds (the
    [telemetry_overhead] row of [BENCH_telemetry.json] tracks this
    against the <5% budget).  Tracing is a second, independent switch:
    span *aggregates* are collected whenever telemetry is on, but
    per-call trace events are buffered only when tracing is also on. *)

type kind =
  | Stable
      (** Deterministic aggregate: a function of the work performed,
          never of scheduling — bit-identical at any [-j] (the contract
          §8 of DESIGN.md pins and the determinism suite checks). *)
  | Volatile
      (** Wall-clock or scheduling dependent (durations, per-domain task
          counts, utilization): exported separately, never compared
          across runs. *)

val on : unit -> bool
val set_enabled : bool -> unit

val trace_on : unit -> bool
val set_tracing : bool -> unit
(** Buffer per-call trace events ({!Trace}); implies nothing about
    [set_enabled] — callers normally switch both on together. *)

val now_ns : unit -> int
(** Wall-clock nanoseconds (from [Unix.gettimeofday]); monotone enough
    for span aggregation and Chrome trace timestamps. *)
