type kind = Stable | Volatile

let enabled = Atomic.make false
let tracing = Atomic.make false
let on () = Atomic.get enabled
let set_enabled b = Atomic.set enabled b
let trace_on () = Atomic.get tracing
let set_tracing b = Atomic.set tracing b
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)
