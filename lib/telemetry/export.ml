let value_json : Registry.value -> Json.t = function
  | Registry.Count n -> Json.Int n
  | Registry.Value f -> Json.Float f
  | Registry.Dist { Histogram.count; sum; buckets } ->
      Json.Obj
        [
          ("count", Json.Int count);
          ("sum", Json.Int sum);
          ( "buckets",
            Json.List
              (List.map
                 (fun (lo, n) -> Json.List [ Json.Int lo; Json.Int n ])
                 buckets) );
        ]

let section entries = Json.Obj (List.map (fun (p, v) -> (p, value_json v)) entries)

let metrics_json (snap : Registry.snapshot) =
  Json.Obj [ ("values", section snap.values); ("timings", section snap.timings) ]

let values_json (snap : Registry.snapshot) = section snap.values

let value_str : Registry.value -> string = function
  | Registry.Count n -> string_of_int n
  | Registry.Value f -> Printf.sprintf "%.4f" f
  | Registry.Dist { Histogram.count; sum; buckets } ->
      let bs =
        List.map (fun (lo, n) -> Printf.sprintf "%d+:%d" lo n) buckets
      in
      Printf.sprintf "count=%d sum=%d [%s]" count sum (String.concat " " bs)

let table (snap : Registry.snapshot) =
  let buf = Buffer.create 1024 in
  let render title entries =
    if entries <> [] then begin
      Buffer.add_string buf title;
      Buffer.add_char buf '\n';
      let width =
        List.fold_left (fun w (p, _) -> max w (String.length p)) 0 entries
      in
      List.iter
        (fun (p, v) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-*s  %s\n" width p (value_str v)))
        entries
    end
  in
  render "values" snap.Registry.values;
  render "timings" snap.Registry.timings;
  Buffer.contents buf

let trace_json ?(process_name = "placement") () =
  let events, dropped = Trace.snapshot () in
  let event (e : Trace.event) =
    Json.Obj
      [
        ("name", Json.Str e.Trace.name);
        ("ph", Json.Str "X");
        ("ts", Json.Float (float_of_int e.Trace.ts_ns /. 1e3));
        ("dur", Json.Float (float_of_int e.Trace.dur_ns /. 1e3));
        ("pid", Json.Int 1);
        ("tid", Json.Int e.Trace.tid);
      ]
  in
  let meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.Str process_name) ]);
      ]
  in
  let fields =
    [ ("traceEvents", Json.List (meta :: List.map event events)) ]
  in
  let fields =
    if dropped > 0 then fields @ [ ("droppedEvents", Json.Int dropped) ]
    else fields
  in
  Json.Obj fields
