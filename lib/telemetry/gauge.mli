(** A last-writer-wins float gauge (e.g. pool utilization).

    Gauges are {!Control.Volatile} by nature in this codebase — they
    summarize scheduling (utilization, speedup) — but the kind is still
    explicit so a future deterministic gauge lands in the right export
    section.  An unset gauge (still NaN) is omitted from snapshots. *)

type t

val make : path:string -> kind:Control.kind -> t
(** Use {!Registry.gauge} instead. *)

val set : t -> float -> unit
(** No-op while telemetry is disabled. *)

val value : t -> float
(** NaN until the first {!set}. *)

val reset : t -> unit
val path : t -> string
val kind : t -> Control.kind
