type t = { path : string; kind : Control.kind; cell : float Atomic.t }

let make ~path ~kind = { path; kind; cell = Atomic.make Float.nan }
let set t v = if Control.on () then Atomic.set t.cell v
let value t = Atomic.get t.cell
let reset t = Atomic.set t.cell Float.nan
let path t = t.path
let kind t = t.kind
