(** A fixed-bucket (power-of-two) histogram of non-negative integers.

    64 buckets: bucket 0 holds observations ≤ 0, bucket i ≥ 1 holds
    [2^(i-1) .. 2^i - 1].  Buckets are atomic, so concurrent observation
    from pool domains aggregates to the same counts at any [-j] when the
    observed multiset is deterministic (kind {!Control.Stable} — e.g.
    per-branch search-node counts); duration histograms are
    {!Control.Volatile}. *)

type t

type snapshot = {
  count : int;  (** total observations *)
  sum : int;  (** sum of observed values *)
  buckets : (int * int) list;
      (** (inclusive lower bound, count), non-empty buckets only, in
          increasing bound order *)
}

val make : path:string -> kind:Control.kind -> t
(** Use {!Registry.histogram} instead. *)

val observe : t -> int -> unit
(** No-op while telemetry is disabled.  Negative values land in bucket
    0 and contribute their (negative) value to [sum]. *)

val snapshot : t -> snapshot
val reset : t -> unit
val path : t -> string
val kind : t -> Control.kind
