(** Render a registry snapshot for humans (aligned table) or machines
    (JSON object, Chrome trace-event file).

    The JSON form prints the deterministic ["values"] object before the
    volatile ["timings"] object, so a consumer (or a cram test) that
    only cares about reproducible search statistics can stop reading at
    the ["timings"] key. *)

val metrics_json : Registry.snapshot -> Json.t
(** [{ "values": {path: v, ...}, "timings": {path: v, ...} }] with keys
    sorted by path.  Histograms become
    [{ "count": n, "sum": s, "buckets": [[lo, n], ...] }]. *)

val values_json : Registry.snapshot -> Json.t
(** Just the deterministic ["values"] object — what bench rows embed so
    recorded search statistics diff cleanly across machines. *)

val table : Registry.snapshot -> string
(** Human-readable two-section table ("values" then "timings"),
    one metric per line, aligned. *)

val trace_json : ?process_name:string -> unit -> Json.t
(** Drain the {!Trace} buffer into a Chrome trace-event JSON document
    (load via [chrome://tracing] or Perfetto).  Timestamps and durations
    are microseconds, as the format requires. *)
