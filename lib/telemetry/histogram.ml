type t = {
  path : string;
  kind : Control.kind;
  buckets : int Atomic.t array;
  sum : int Atomic.t;
}

type snapshot = { count : int; sum : int; buckets : (int * int) list }

let nbuckets = 64

let make ~path ~kind =
  {
    path;
    kind;
    buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
    sum = Atomic.make 0;
  }

(* Bucket index: 0 for v <= 0, otherwise floor(log2 v) + 1 (so bucket i
   starts at 2^(i-1)), capped at the last bucket. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 and v = ref v in
    while !v > 0 do
      incr i;
      v := !v lsr 1
    done;
    min !i (nbuckets - 1)
  end

let bucket_lo i = if i = 0 then 0 else 1 lsl (i - 1)

let observe (t : t) v =
  if Control.on () then begin
    ignore (Atomic.fetch_and_add t.buckets.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add t.sum v)
  end

let snapshot (t : t) =
  let count = ref 0 and buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    let c = Atomic.get t.buckets.(i) in
    if c > 0 then begin
      count := !count + c;
      buckets := (bucket_lo i, c) :: !buckets
    end
  done;
  { count = !count; sum = Atomic.get t.sum; buckets = !buckets }

let reset (t : t) =
  Array.iter (fun b -> Atomic.set b 0) t.buckets;
  Atomic.set t.sum 0

let path (t : t) = t.path
let kind (t : t) = t.kind
