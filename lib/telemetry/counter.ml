type t = { path : string; kind : Control.kind; cell : int Atomic.t }

let make ~path ~kind = { path; kind; cell = Atomic.make 0 }
let add t n = if Control.on () && n <> 0 then ignore (Atomic.fetch_and_add t.cell n)
let incr t = add t 1
let value t = Atomic.get t.cell
let reset t = Atomic.set t.cell 0
let path t = t.path
let kind t = t.kind
