(** An atomic monotonically-increasing counter.

    Sums are order-independent, so a counter fed from many pool domains
    aggregates to the same value at any [-j] — provided the *set* of
    increments is itself deterministic, which is what its
    {!Control.kind} declares.  Hot loops should accumulate into a plain
    local [int] and {!add} once per task rather than paying an atomic
    RMW per event (see the branch fold of [Placement.Adversary.exact]). *)

type t

val make : path:string -> kind:Control.kind -> t
(** Use {!Registry.counter} instead: metrics must live in the registry
    to appear in snapshots. *)

val add : t -> int -> unit
(** No-op while telemetry is disabled ({!Control.on}). *)

val incr : t -> unit
val value : t -> int
val reset : t -> unit
val path : t -> string
val kind : t -> Control.kind
