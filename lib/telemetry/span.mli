(** A monotonic span timer: aggregate call count and total duration,
    plus an optional per-call trace event ({!Trace}) when tracing is on.

    The call *count* is deterministic whenever the instrumented call
    sites are (declare it {!Control.Stable}); the accumulated duration
    is always wall-clock and exported with the volatile metrics.  Spans
    are safe to enter concurrently from many domains. *)

type t

val make : path:string -> kind:Control.kind -> t
(** [kind] classifies the {e count}; durations are always volatile.
    Use {!Registry.span} instead. *)

val time : t -> (unit -> 'a) -> 'a
(** Run the thunk, recording one call and its duration (also on
    exception).  While telemetry is disabled this is exactly [f ()]. *)

val record_ns : t -> int -> unit
(** Record an externally-measured duration (no trace event). *)

val count : t -> int
val total_ns : t -> int
val reset : t -> unit
val path : t -> string
val kind : t -> Control.kind
