(* VmHWM ("high water mark") is the peak resident set of the process;
   /proc/self/status lines look like "VmHWM:      123456 kB". *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              let rest = String.sub line 6 (String.length line - 6) in
              int_of_string_opt
                (String.trim
                   (match String.index_opt rest 'k' with
                   | Some i -> String.sub rest 0 i
                   | None -> rest))
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let m_peak_rss = Registry.gauge "process/peak_rss_kb"

let sample () =
  if Control.on () then
    match peak_rss_kb () with
    | Some kb -> Gauge.set m_peak_rss (float_of_int kb)
    | None -> ()
