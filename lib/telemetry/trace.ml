type event = { name : string; ts_ns : int; dur_ns : int; tid : int }

let capacity = 65536
let mutex = Mutex.create ()
let events : event list ref = ref []
let count = ref 0
let dropped = ref 0

let emit ~name ~ts_ns ~dur_ns =
  let tid = (Domain.self () :> int) in
  Mutex.lock mutex;
  if !count < capacity then begin
    events := { name; ts_ns; dur_ns; tid } :: !events;
    incr count
  end
  else incr dropped;
  Mutex.unlock mutex

let snapshot () =
  Mutex.lock mutex;
  let evs = !events and dropped = !dropped in
  Mutex.unlock mutex;
  (List.sort (fun a b -> compare (a.ts_ns, a.tid) (b.ts_ns, b.tid)) evs, dropped)

let reset () =
  Mutex.lock mutex;
  events := [];
  count := 0;
  dropped := 0;
  Mutex.unlock mutex
