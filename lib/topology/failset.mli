(** Domain-budget failure sets: "fail any [j] domains at level [l]".

    The domain adversary ({!Adversary}), the random rack scenario
    ({!Dsim.Scenario}) and the exhaustive enumeration all draw their
    candidate failure sets from here, so the node sets they fail are
    provably the same family. *)

val validate : Tree.t -> level:int -> j:int -> unit
(** @raise Invalid_argument unless [0 <= j <= domain_count] and the
    level exists. *)

val count : Tree.t -> level:int -> j:int -> int option
(** [C(domain_count, j)], or [None] on overflow. *)

val nodes : Tree.t -> level:int -> int array -> int array
(** Union of the member nodes of the given domains (sorted; the domains
    of one level are disjoint). *)

val iter : Tree.t -> level:int -> j:int -> (int array -> unit) -> unit
(** Every [j]-subset of domain ids in lexicographic order; the array is
    reused between calls ({!Combin.Subset.iter}). *)

val sample : rng:Combin.Rng.t -> Tree.t -> level:int -> j:int -> int array
(** A uniformly random [j]-subset of domain ids, sorted.  Consumes
    exactly one {!Combin.Rng.sample_distinct} draw. *)
