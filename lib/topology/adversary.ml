let log_src =
  Logs.Src.create "topology.adversary" ~doc:"domain-aware worst-case adversary"

module Log = (val Logs.src_log log_src : Logs.LOG)

type attack = {
  failed_domains : int array;
  failed_nodes : int array;
  failed_objects : int;
  exact : bool;
}

(* Search statistics, Stable like the node adversary's: branches never
   re-read the shared incumbent and budgets are pre-split per branch, so
   every count is a pure function of (layout, tree, level, j).  Hot
   loops accumulate plain local ints, flushed once per branch in branch
   order. *)
let m_bb_branches = Telemetry.Registry.counter "topology/adversary/bb/branches"
let m_bb_nodes = Telemetry.Registry.counter "topology/adversary/bb/nodes_expanded"
let m_bb_leaves = Telemetry.Registry.counter "topology/adversary/bb/leaves"
let m_bb_prunes = Telemetry.Registry.counter "topology/adversary/bb/bound_prunes"
let m_bb_improves = Telemetry.Registry.counter "topology/adversary/bb/improvements"
let m_bb_truncated =
  Telemetry.Registry.counter "topology/adversary/bb/truncated_branches"
let m_exh_subsets =
  Telemetry.Registry.counter "topology/adversary/exhaustive/subsets"
let m_greedy_runs = Telemetry.Registry.counter "topology/adversary/greedy/runs"
let m_greedy_evals =
  Telemetry.Registry.counter "topology/adversary/greedy/marginal_evals"
let m_attack_exh =
  Telemetry.Registry.counter "topology/adversary/attack/exhaustive_dispatch"
let m_attack_bb =
  Telemetry.Registry.counter "topology/adversary/attack/bb_dispatch"
let m_attack_span = Telemetry.Registry.span "topology/adversary/attack"

(* Kernel counters, mirroring core/adversary/kernel/* (Stable, flushed
   per run or per branch in deterministic order). *)
let m_kernel_updates =
  Telemetry.Registry.counter "topology/adversary/kernel/updates"
let m_kernel_pops =
  Telemetry.Registry.counter "topology/adversary/kernel/heap_pops"
let m_kernel_stale =
  Telemetry.Registry.counter "topology/adversary/kernel/stale_reevals"
let m_kernel_undos =
  Telemetry.Registry.counter "topology/adversary/kernel/bb_undos"
let m_kernel_undo_depth =
  Telemetry.Registry.histogram "topology/adversary/kernel/bb_undo_depth"

(* Attack units are same-level fault domains: row [d] of the domain CSR
   lists one entry per replica hosted inside domain [d] (same-level
   domains are disjoint node sets, so failing domain [d] fails each
   entry once).  The rows are regrouped off-heap from the layout's
   memoized node CSR ({!Combin.Csr.group}) — no boxed per-domain
   intermediate; domains may hold several replicas of one object, so
   the kernel keeps multiplicities. *)
let kernel_of layout tree ~level ~s =
  let members =
    Array.init (Tree.domain_count tree ~level) (Tree.members tree ~level)
  in
  Placement.Kernel.of_csr ~s
    (Combin.Csr.group (Placement.Layout.incidence layout) members)

let check layout tree ~level ~j =
  if layout.Placement.Layout.n <> Tree.n tree then
    invalid_arg
      (Printf.sprintf
         "Topology.Adversary: layout has n=%d but the topology has %d nodes"
         layout.Placement.Layout.n (Tree.n tree));
  Failset.validate tree ~level ~j

let of_domains tree ~level domains ~failed_objects ~exact =
  {
    failed_domains = Combin.Intset.of_array domains;
    failed_nodes = Failset.nodes tree ~level domains;
    failed_objects;
    exact;
  }

(* One-shot scoring: expand the domains to their node set and run the
   plain O(b·r) merge — no per-call rebuild of the domain incidence.
   Repeated-eval callers should hold a kernel from {!kernel_of}. *)
let eval layout ~s tree ~level domains =
  Placement.Layout.failed_objects layout ~s
    ~failed_nodes:(Failset.nodes tree ~level domains)

let pmap pool f xs =
  match pool with
  | Some p -> Engine.Pool.parallel_map p f xs
  | None -> Array.map f xs

let greedy ?pool layout ~s tree ~level ~j =
  check layout tree ~level ~j;
  let kn = kernel_of layout tree ~level ~s in
  let picks, stats = Placement.Kernel.select_greedy_sharded ?pool kn ~picks:j in
  Telemetry.Counter.incr m_greedy_runs;
  Telemetry.Counter.add m_greedy_evals stats.Placement.Kernel.evals;
  Telemetry.Counter.add m_kernel_pops stats.Placement.Kernel.heap_pops;
  Telemetry.Counter.add m_kernel_stale stats.Placement.Kernel.stale_reevals;
  Telemetry.Counter.add m_kernel_updates (Placement.Kernel.updates kn);
  of_domains tree ~level picks
    ~failed_objects:(Placement.Kernel.killed kn)
    ~exact:false

let exhaustive layout ~s tree ~level ~j =
  check layout tree ~level ~j;
  if j = 0 then
    of_domains tree ~level [||] ~failed_objects:0 ~exact:true
  else begin
    (* Greedy seed + strict lexicographic improvement: the reported set
       is the greedy one unless some subset strictly beats it, exactly
       as the branch-and-bound path resolves ties. *)
    let g = greedy layout ~s tree ~level ~j in
    let st = kernel_of layout tree ~level ~s in
    let best = ref g.failed_objects and best_set = ref None in
    let subsets = ref 0 in
    let nd = Tree.domain_count tree ~level in
    let current = Array.make j 0 in
    let rec go start depth =
      if depth = j then begin
        incr subsets;
        if Placement.Kernel.killed st > !best then begin
          best := Placement.Kernel.killed st;
          best_set := Some (Array.copy current)
        end
      end
      else
        for d = start to nd - (j - depth) do
          current.(depth) <- d;
          Placement.Kernel.add st d;
          go (d + 1) (depth + 1);
          Placement.Kernel.remove st d
        done
    in
    go 0 0;
    Telemetry.Counter.add m_exh_subsets !subsets;
    Telemetry.Counter.add m_kernel_updates (Placement.Kernel.updates st);
    match !best_set with
    | Some domains ->
        of_domains tree ~level domains ~failed_objects:!best ~exact:true
    | None -> { g with exact = true }
  end

let exact ?(budget = 50_000_000) ?pool layout ~s tree ~level ~j =
  check layout tree ~level ~j;
  if j = 0 then
    of_domains tree ~level [||] ~failed_objects:0 ~exact:true
  else begin
    let nd = Tree.domain_count tree ~level in
    let kn0 = kernel_of layout tree ~level ~s in
    let degrees = Array.init nd (Placement.Kernel.degree kn0) in
    (* top_deg.(start).(m): sum of the m largest domain degrees with id
       >= start — an upper bound on the damage of m more picks.  One
       suffix sweep maintaining the j largest degrees in a sorted
       scratch row: O(nd·j), same values as sorting every suffix. *)
    let top_deg =
      let acc = Array.make_matrix (nd + 1) (j + 1) 0 in
      let top = Array.make j 0 in
      let top_len = ref 0 in
      for start = nd - 1 downto 0 do
        let d = degrees.(start) in
        if !top_len < j then begin
          let i = ref !top_len in
          while !i > 0 && top.(!i - 1) < d do
            top.(!i) <- top.(!i - 1);
            decr i
          done;
          top.(!i) <- d;
          incr top_len
        end
        else if j > 0 && d > top.(j - 1) then begin
          let i = ref (j - 1) in
          while !i > 0 && top.(!i - 1) < d do
            top.(!i) <- top.(!i - 1);
            decr i
          done;
          top.(!i) <- d
        end;
        let row = acc.(start) in
        for m = 1 to j do
          row.(m) <- row.(m - 1) + (if m - 1 < !top_len then top.(m - 1) else 0)
        done
      done;
      acc
    in
    (* Greedy seeds the incumbent; the bound cell is read once here,
       before dispatch — branches publish improvements but never re-read
       it, so pruning (and hence every statistic and the reported set)
       is identical at every -j. *)
    let g = greedy ?pool layout ~s tree ~level ~j in
    let incumbent = Engine.Bound.create g.failed_objects in
    let seed_bound = Engine.Bound.get incumbent in
    let first_choices = Array.init (nd - j + 1) Fun.id in
    let branch_budget = max 1 (budget / Array.length first_choices) in
    let run_branch d0 =
      let st = Placement.Kernel.copy kn0 in
      let best = ref seed_bound and best_set = ref None in
      let current = Array.make j 0 in
      let visited = ref 0 in
      let leaves = ref 0 and prunes = ref 0 and improves = ref 0 in
      let undos = ref 0 and max_undo_depth = ref 0 in
      let truncated = ref false in
      let rec go start depth =
        incr visited;
        if !visited > branch_budget then truncated := true
        else if depth = j then begin
          incr leaves;
          if Placement.Kernel.killed st > !best then begin
            incr improves;
            best := Placement.Kernel.killed st;
            best_set := Some (Array.copy current);
            ignore (Engine.Bound.improve incumbent (Placement.Kernel.killed st))
          end
        end
        else if Placement.Kernel.killed st + top_deg.(start).(j - depth) > !best
        then
          for d = start to nd - (j - depth) do
            if not !truncated then begin
              current.(depth) <- d;
              Placement.Kernel.add st d;
              go (d + 1) (depth + 1);
              Placement.Kernel.remove st d;
              incr undos;
              if depth + 1 > !max_undo_depth then max_undo_depth := depth + 1
            end
          done
        else incr prunes
      in
      current.(0) <- d0;
      Placement.Kernel.add st d0;
      go (d0 + 1) 1;
      ( !best,
        !best_set,
        !truncated,
        (!visited, !leaves, !prunes, !improves),
        (Placement.Kernel.updates st, !undos, !max_undo_depth) )
    in
    let results = pmap pool run_branch first_choices in
    (* Deterministic fold: strict improvement, lowest branch wins ties;
       statistics flushed here in branch order on the calling domain. *)
    let best = ref g.failed_objects and best_set = ref None in
    let truncated = ref false in
    Array.iter
      (fun (v, set, tr, (visited, leaves, prunes, improves),
            (updates, undos, max_undo_depth)) ->
        Telemetry.Counter.incr m_bb_branches;
        Telemetry.Counter.add m_bb_nodes visited;
        Telemetry.Counter.add m_bb_leaves leaves;
        Telemetry.Counter.add m_bb_prunes prunes;
        Telemetry.Counter.add m_bb_improves improves;
        Telemetry.Counter.add m_kernel_updates updates;
        Telemetry.Counter.add m_kernel_undos undos;
        Telemetry.Histogram.observe m_kernel_undo_depth max_undo_depth;
        if tr then Telemetry.Counter.incr m_bb_truncated;
        if tr then truncated := true;
        match set with
        | Some domains when v > !best ->
            best := v;
            best_set := Some domains
        | _ -> ())
      results;
    match !best_set with
    | Some domains ->
        of_domains tree ~level domains ~failed_objects:!best
          ~exact:(not !truncated)
    | None -> { g with exact = not !truncated }
  end

let attack ?pool ?budget ?(exhaustive_limit = 20_000) layout ~s tree ~level ~j =
  Telemetry.Span.time m_attack_span @@ fun () ->
  check layout tree ~level ~j;
  let small =
    match Failset.count tree ~level ~j with
    | Some c -> c <= exhaustive_limit
    | None -> false
  in
  if small then begin
    Telemetry.Counter.incr m_attack_exh;
    exhaustive layout ~s tree ~level ~j
  end
  else begin
    Telemetry.Counter.incr m_attack_bb;
    let result = exact ?budget ?pool layout ~s tree ~level ~j in
    if not result.exact then
      Log.warn (fun m ->
          m
            "domain adversary truncated by node budget at level %S j=%d: \
             reporting best-so-far (>= greedy) as a heuristic"
            (Tree.level_name tree level) j);
    result
  end

let avail layout attack = Placement.Layout.b layout - attack.failed_objects
