let log_src =
  Logs.Src.create "topology.adversary" ~doc:"domain-aware worst-case adversary"

module Log = (val Logs.src_log log_src : Logs.LOG)

type attack = {
  failed_domains : int array;
  failed_nodes : int array;
  failed_objects : int;
  exact : bool;
}

(* Search statistics, mirroring the node adversary's: the frontier
   (Placement.Bb) prunes against a shared incumbent that tightens
   mid-flight, so per-node counts are Volatile; the spawn phase is a
   pure function of (layout, tree, level, j), so the task count and
   spawn depth stay Stable.  Hot loops accumulate plain local ints
   inside the frontier, flushed here once per search. *)
let m_bb_nodes =
  Telemetry.Registry.counter ~kind:Volatile "topology/adversary/bb/nodes_expanded"
let m_bb_leaves =
  Telemetry.Registry.counter ~kind:Volatile "topology/adversary/bb/leaves"
let m_bb_prunes =
  Telemetry.Registry.counter ~kind:Volatile "topology/adversary/bb/bound_prunes"
let m_bb_improves =
  Telemetry.Registry.counter ~kind:Volatile "topology/adversary/bb/improvements"
let m_bb_truncations =
  Telemetry.Registry.counter ~kind:Volatile "topology/adversary/bb/truncations"
let m_bb_spawned =
  Telemetry.Registry.counter "topology/adversary/bb/spawned_tasks"
let m_bb_spawn_depth =
  Telemetry.Registry.gauge ~kind:Stable "topology/adversary/bb/spawn_depth"
let m_bb_steals =
  Telemetry.Registry.counter ~kind:Volatile "topology/adversary/bb/steals"
let m_bb_pubs =
  Telemetry.Registry.counter ~kind:Volatile
    "topology/adversary/bb/bound_publications"
let m_bb_completions =
  Telemetry.Registry.counter ~kind:Volatile "topology/adversary/bb/completions"
let m_exh_subsets =
  Telemetry.Registry.counter "topology/adversary/exhaustive/subsets"
let m_greedy_runs = Telemetry.Registry.counter "topology/adversary/greedy/runs"
let m_greedy_evals =
  Telemetry.Registry.counter "topology/adversary/greedy/marginal_evals"
let m_attack_exh =
  Telemetry.Registry.counter "topology/adversary/attack/exhaustive_dispatch"
let m_attack_bb =
  Telemetry.Registry.counter "topology/adversary/attack/bb_dispatch"
let m_attack_span = Telemetry.Registry.span "topology/adversary/attack"

(* Kernel counters, mirroring core/adversary/kernel/*: greedy and
   exhaustive traffic is deterministic (Stable [kernel/updates]); the
   frontier's kernel traffic follows its timing-dependent exploration
   (Volatile, under the bb prefix). *)
let m_kernel_updates =
  Telemetry.Registry.counter "topology/adversary/kernel/updates"
let m_kernel_pops =
  Telemetry.Registry.counter "topology/adversary/kernel/heap_pops"
let m_kernel_stale =
  Telemetry.Registry.counter "topology/adversary/kernel/stale_reevals"
let m_bb_kernel_updates =
  Telemetry.Registry.counter ~kind:Volatile
    "topology/adversary/bb/kernel_updates"
let m_kernel_undos =
  Telemetry.Registry.counter ~kind:Volatile "topology/adversary/kernel/bb_undos"
let m_kernel_undo_depth =
  Telemetry.Registry.histogram ~kind:Volatile
    "topology/adversary/kernel/bb_undo_depth"

(* Attack units are same-level fault domains: row [d] of the domain CSR
   lists one entry per replica hosted inside domain [d] (same-level
   domains are disjoint node sets, so failing domain [d] fails each
   entry once).  The rows are regrouped off-heap from the layout's
   memoized node CSR ({!Combin.Csr.group}) — no boxed per-domain
   intermediate; domains may hold several replicas of one object, so
   the kernel keeps multiplicities. *)
let kernel_of layout tree ~level ~s =
  let members =
    Array.init (Tree.domain_count tree ~level) (Tree.members tree ~level)
  in
  Placement.Kernel.of_csr ~s
    (Combin.Csr.group (Placement.Layout.incidence layout) members)

let check layout tree ~level ~j =
  if layout.Placement.Layout.n <> Tree.n tree then
    invalid_arg
      (Printf.sprintf
         "Topology.Adversary: layout has n=%d but the topology has %d nodes"
         layout.Placement.Layout.n (Tree.n tree));
  Failset.validate tree ~level ~j

let of_domains tree ~level domains ~failed_objects ~exact =
  {
    failed_domains = Combin.Intset.of_array domains;
    failed_nodes = Failset.nodes tree ~level domains;
    failed_objects;
    exact;
  }

(* One-shot scoring: expand the domains to their node set and run the
   plain O(b·r) merge — no per-call rebuild of the domain incidence.
   Repeated-eval callers should hold a kernel from {!kernel_of}. *)
let eval layout ~s tree ~level domains =
  Placement.Layout.failed_objects layout ~s
    ~failed_nodes:(Failset.nodes tree ~level domains)

let greedy ?pool layout ~s tree ~level ~j =
  check layout tree ~level ~j;
  let kn = kernel_of layout tree ~level ~s in
  let picks, stats = Placement.Kernel.select_greedy_sharded ?pool kn ~picks:j in
  Telemetry.Counter.incr m_greedy_runs;
  Telemetry.Counter.add m_greedy_evals stats.Placement.Kernel.evals;
  Telemetry.Counter.add m_kernel_pops stats.Placement.Kernel.heap_pops;
  Telemetry.Counter.add m_kernel_stale stats.Placement.Kernel.stale_reevals;
  Telemetry.Counter.add m_kernel_updates (Placement.Kernel.updates kn);
  of_domains tree ~level picks
    ~failed_objects:(Placement.Kernel.killed kn)
    ~exact:false

let exhaustive layout ~s tree ~level ~j =
  check layout tree ~level ~j;
  if j = 0 then
    of_domains tree ~level [||] ~failed_objects:0 ~exact:true
  else begin
    (* Greedy seed + strict lexicographic improvement: the reported set
       is the greedy one unless some subset strictly beats it, exactly
       as the branch-and-bound path resolves ties. *)
    let g = greedy layout ~s tree ~level ~j in
    let st = kernel_of layout tree ~level ~s in
    let best = ref g.failed_objects and best_set = ref None in
    let subsets = ref 0 in
    let nd = Tree.domain_count tree ~level in
    let current = Array.make j 0 in
    let rec go start depth =
      if depth = j then begin
        incr subsets;
        if Placement.Kernel.killed st > !best then begin
          best := Placement.Kernel.killed st;
          best_set := Some (Array.copy current)
        end
      end
      else
        for d = start to nd - (j - depth) do
          current.(depth) <- d;
          Placement.Kernel.add st d;
          go (d + 1) (depth + 1);
          Placement.Kernel.remove st d
        done
    in
    go 0 0;
    Telemetry.Counter.add m_exh_subsets !subsets;
    Telemetry.Counter.add m_kernel_updates (Placement.Kernel.updates st);
    match !best_set with
    | Some domains ->
        of_domains tree ~level domains ~failed_objects:!best ~exact:true
    | None -> { g with exact = true }
  end

(* Flush a frontier run's statistics into the topology counters, once
   per search on the calling domain. *)
let flush_bb_stats (st : Placement.Bb.stats) =
  Telemetry.Gauge.set m_bb_spawn_depth (float_of_int st.Placement.Bb.spawn_depth);
  Telemetry.Counter.add m_bb_spawned st.Placement.Bb.spawned_tasks;
  Telemetry.Counter.add m_bb_nodes st.Placement.Bb.nodes;
  Telemetry.Counter.add m_bb_leaves st.Placement.Bb.leaves;
  Telemetry.Counter.add m_bb_prunes st.Placement.Bb.prunes;
  Telemetry.Counter.add m_bb_improves st.Placement.Bb.improvements;
  Telemetry.Counter.add m_bb_completions st.Placement.Bb.completions;
  Telemetry.Counter.add m_bb_pubs st.Placement.Bb.bound_publications;
  Telemetry.Counter.add m_bb_steals st.Placement.Bb.steals;
  Telemetry.Counter.add m_bb_kernel_updates st.Placement.Bb.kernel_updates;
  Telemetry.Counter.add m_kernel_undos st.Placement.Bb.undos;
  Telemetry.Histogram.observe m_kernel_undo_depth st.Placement.Bb.max_undo_depth

(* The shared frontier (Placement.Bb, DESIGN.md §15) over the domain
   kernel: greedy seeds the incumbent, prefix tasks cut at a
   deterministic spawn depth drain through work stealing under one
   global node budget, and the merge reports the lexicographically
   smallest optimal domain set at any -j.  On budget exhaustion the
   result deterministically falls back to the greedy attack. *)
let exact ?(budget = 50_000_000) ?spawn_depth ?pool layout ~s tree ~level ~j =
  check layout tree ~level ~j;
  if j = 0 then
    of_domains tree ~level [||] ~failed_objects:0 ~exact:true
  else begin
    let kn0 = kernel_of layout tree ~level ~s in
    let g = greedy ?pool layout ~s tree ~level ~j in
    let r =
      Placement.Bb.search ?pool ?spawn_depth ~budget ~kernel:kn0 ~k:j
        ~seed:g.failed_objects ()
    in
    flush_bb_stats r.Placement.Bb.stats;
    if r.Placement.Bb.truncated then begin
      Telemetry.Counter.incr m_bb_truncations;
      { g with exact = false }
    end
    else
      match r.Placement.Bb.set with
      | Some domains ->
          of_domains tree ~level domains
            ~failed_objects:r.Placement.Bb.value ~exact:true
      | None -> { g with exact = true }
  end

let attack ?pool ?budget ?(exhaustive_limit = 20_000) layout ~s tree ~level ~j =
  Telemetry.Span.time m_attack_span @@ fun () ->
  check layout tree ~level ~j;
  let small =
    match Failset.count tree ~level ~j with
    | Some c -> c <= exhaustive_limit
    | None -> false
  in
  if small then begin
    Telemetry.Counter.incr m_attack_exh;
    exhaustive layout ~s tree ~level ~j
  end
  else begin
    Telemetry.Counter.incr m_attack_bb;
    let result = exact ?budget ?pool layout ~s tree ~level ~j in
    if not result.exact then
      Log.warn (fun m ->
          m
            "domain adversary exhausted its global node budget at level %S \
             j=%d: reporting the greedy attack as a heuristic"
            (Tree.level_name tree level) j);
    result
  end

let avail layout attack = Placement.Layout.b layout - attack.failed_objects
