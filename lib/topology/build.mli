(** Constructors for the common fault-domain shapes.

    Everything funnels into {!Tree.make}; these builders only decide the
    grouping.  The compact textual form is parsed by {!Spec}. *)

val flat : int -> Tree.t
(** [flat n]: every node is its own rack (levels [node], [rack] with
    singleton racks).  This is {!Dsim.Cluster}'s historical default rack
    model; the rack-level adversary on a flat tree is exactly the
    paper's node adversary. *)

val regular : racks:int -> nodes_per_rack:int -> Tree.t
(** [regular ~racks ~nodes_per_rack]: [racks × nodes_per_rack] nodes in
    equal contiguous racks. *)

val of_racks : ?name:string -> int array -> Tree.t
(** [of_racks racks]: one interior level (default name ["rack"]) from a
    per-node rack-id array ([racks.(nd)] is node [nd]'s rack; arbitrary
    non-negative ids, normalized in ascending order). *)

val partition : ?name:string -> n:int -> domains:int -> unit -> Tree.t
(** [partition ~n ~domains ()]: [n] nodes in [domains] contiguous
    near-even groups (sizes differ by at most one) — the builder for
    node counts that do not factor, e.g. 31 nodes in 8 racks. *)

val nested : (string * int) list -> Tree.t
(** [nested [(name_0, c_0); ...; (name_m, c_m)]], coarsest first: [c_0]
    domains of level [name_0], each containing [c_1] of [name_1], ...;
    the last component counts the leaves, so [n = c_0·…·c_m] and the
    leaf level is named [name_m].  [nested [("rack", 4); ("node", 5)]]
    is [regular ~racks:4 ~nodes_per_rack:5].
    @raise Invalid_argument on an empty list or counts < 1. *)
