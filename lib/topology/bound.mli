(** The domain-failure analogue of Lemma 2's [lbAvail_si].

    Failing [j] domains at level [l] fails at most the nodes those
    domains contain, so the worst [j]-domain failure can never beat the
    worst [K]-node failure where [K] bounds the covered node count.
    Two reductions, coarse to tight:

    - naive: [K = j × max domain size] at the level;
    - per-level refinement: [K = sum of the j largest domain sizes] at
      the level — strictly tighter whenever domains are uneven (and the
      value actually fed to Lemma 2 here).

    Both are sound because the adversary picks {e some} [j] domains; the
    refinement just refuses to pretend every pick is maximal.  With
    [K] in hand, a Simple(x, λ) placement keeps at least
    [b − ⌊λ·C(K, x+1)/C(s, x+1)⌋] objects ({!Placement.Analysis}). *)

type report = {
  level : int;
  j : int;
  covered_nodes : int;  (** the refined K: sum of the j largest sizes *)
  naive_nodes : int;  (** j × max domain size, for comparison *)
  si : Placement.Analysis.lb_report;  (** Lemma 2 at [k = covered_nodes] *)
}

val covered_nodes : Tree.t -> level:int -> j:int -> int
(** The refined K. *)

val si_report :
  ?choose:(int -> int -> int) ->
  b:int -> x:int -> lambda:int -> s:int ->
  Tree.t -> level:int -> j:int -> report
(** The Simple(x, λ) domain-failure guarantee.  [choose] as in
    {!Placement.Analysis.lb_avail_si_report}. *)

val load_report :
  ?choose:(int -> int -> int) ->
  b:int -> r:int -> s:int -> Tree.t -> level:int -> j:int -> report
(** [si_report] at [x = 0] with [λ = ⌈r·b/n⌉]: a guarantee valid for
    {e any} load-balanced placement (Definition 4's cap), which is what
    the CLI reports when only the parameters are known. *)
