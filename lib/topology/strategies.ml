module Strategy = Placement.Strategy
module Instance = Placement.Instance
module Layout = Placement.Layout
module Analysis = Placement.Analysis
module Params = Placement.Params

type config = { tree : Tree.t; level : int; cap : int }

let current : config option ref = ref None

let default_level tree = min 1 (Tree.depth tree - 1)

let configure ?level ?cap tree =
  let level = match level with Some l -> l | None -> default_level tree in
  let cap = match cap with Some c -> c | None -> 1 in
  if level < 0 || level >= Tree.depth tree then
    invalid_arg
      (Printf.sprintf "Topology.Strategies.configure: level %d out of range"
         level);
  if cap < 1 then
    invalid_arg "Topology.Strategies.configure: cap must be >= 1";
  current := Some { tree; level; cap }

let config () = !current
let clear_config () = current := None

let require_config ~name inst =
  match !current with
  | None ->
      invalid_arg
        (name
       ^ ": no topology configured; pass --topology SPEC (or call \
          Topology.Strategies.configure) so the spread family has fault \
          domains to place against")
  | Some cfg ->
      let n = (Instance.params inst).Params.n in
      if Tree.n cfg.tree <> n then
        invalid_arg
          (Printf.sprintf
             "%s: the configured topology has %d nodes but n = %d; the \
              topology must cover exactly the cluster's nodes"
             name (Tree.n cfg.tree) n);
      (match
         Spread.check_feasible cfg.tree ~level:cfg.level ~cap:cfg.cap
           ~r:(Instance.params inst).Params.r
       with
      | Ok () -> ()
      | Error msg -> invalid_arg (name ^ ": " ^ msg));
      cfg

let default_rng rng = match rng with Some r -> r | None -> Combin.Rng.create 42

(* Lemma 2 at x = 0 with λ = the planned layout's max load, like the
   registry's Random/Copyset families. *)
let load_bound inst layout =
  let p = Instance.params inst in
  (Analysis.lb_avail_si_report ~choose:(Instance.choose inst) ~b:p.Params.b
     ~x:0
     ~lambda:(Layout.max_load layout)
     ~k:p.Params.k ~s:p.Params.s ())
    .Analysis.lb_clamped

let explain_of ~name inst =
  match !current with
  | None -> [ "no topology configured; pass --topology SPEC" ]
  | Some cfg ->
      let p = Instance.params inst in
      let level_name = Tree.level_name cfg.tree cfg.level in
      let immune = (p.Params.s - 1) / cfg.cap in
      [
        Printf.sprintf "topology: %s" (Spec.summary cfg.tree);
        Printf.sprintf "constraint: at most %d replica(s) per %s (%s)" cfg.cap
          level_name name;
        (if immune > 0 then
           Printf.sprintf
             "any %d simultaneous %s failure(s) kill zero objects (j*cap < \
              s=%d)"
             immune level_name p.Params.s
         else
           Printf.sprintf
             "no domain-failure immunity at cap %d (s=%d)" cfg.cap p.Params.s);
      ]

module Simple_spread = struct
  let name = "simple-spread"

  let describe =
    "deterministic round-robin across fault domains, at most cap replicas per \
     domain (requires --topology)"

  let capabilities = [ Strategy.Deterministic ]

  let plan ?rng:_ inst =
    let cfg = require_config ~name inst in
    let p = Instance.params inst in
    Spread.simple cfg.tree ~level:cfg.level ~cap:cfg.cap ~b:p.Params.b
      ~r:p.Params.r

  (* Declines (None) rather than raising when the configuration cannot
     plan this instance — report assembly must stay total. *)
  let lower_bound ?layout inst =
    match (!current, layout) with
    | None, _ -> None
    | Some _, Some l -> Some (load_bound inst l)
    | Some _, None -> (
        try Some (load_bound inst (plan inst)) with Invalid_argument _ -> None)

  let explain inst = explain_of ~name inst
end

module Random_spread = struct
  let name = "random-spread"

  let describe =
    "randomized placement constrained to at most cap replicas per fault \
     domain (requires --topology)"

  let capabilities = [ Strategy.Randomized ]

  let plan ?rng inst =
    let cfg = require_config ~name inst in
    let p = Instance.params inst in
    Spread.random ~rng:(default_rng rng) cfg.tree ~level:cfg.level ~cap:cfg.cap
      ~b:p.Params.b ~r:p.Params.r

  let lower_bound ?layout inst =
    match (!current, layout) with
    | None, _ -> None
    | Some _, Some l -> Some (load_bound inst l)
    | Some _, None -> (
        try Some (load_bound inst (plan inst)) with Invalid_argument _ -> None)

  let explain inst = explain_of ~name inst
end

let () =
  List.iter Strategy.register
    [ (module Simple_spread : Strategy.S); (module Random_spread : Strategy.S) ]

let ensure_registered () = ()
