let max_nodes = 1_000_000

let valid_name s =
  String.length s > 0
  && (match s.[0] with 'A' .. 'Z' | 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '-' -> true | _ -> false)
       s

let parse_component comp =
  match String.index_opt comp ':' with
  | None ->
      Error
        (Printf.sprintf "component %S must be NAME:COUNT (e.g. rack:4)" comp)
  | Some i ->
      let name = String.sub comp 0 i in
      let count = String.sub comp (i + 1) (String.length comp - i - 1) in
      if not (valid_name name) then
        Error
          (Printf.sprintf
             "component %S has an invalid level name (want [A-Za-z][A-Za-z0-9_-]*)"
             comp)
      else begin
        match int_of_string_opt count with
        | Some c when c >= 1 -> Ok (name, c)
        | _ ->
            Error
              (Printf.sprintf "component %S must have an integer COUNT >= 1"
                 comp)
      end

let parse s =
  if String.trim s = "" then
    Error "empty topology spec; want NAME:COUNT[/NAME:COUNT...] (e.g. zone:2/rack:4/node:8)"
  else begin
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | comp :: rest -> (
          match parse_component comp with
          | Ok c -> go (c :: acc) rest
          | Error _ as e -> e)
    in
    match go [] (String.split_on_char '/' (String.trim s)) with
    | Error _ as e -> e
    | Ok components ->
        let names = List.map fst components in
        if List.length (List.sort_uniq compare names) <> List.length names then
          Error
            (Printf.sprintf "duplicate level name in topology spec %S" s)
        else begin
          let n = List.fold_left (fun acc (_, c) -> acc * c) 1 components in
          if n > max_nodes then
            Error
              (Printf.sprintf
                 "topology spec %S describes %d nodes, over the %d-node cap" s n
                 max_nodes)
          else Ok (Build.nested components)
        end
  end

let parse_exn s =
  match parse s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Topology.Spec.parse: " ^ msg)

let summary t =
  let levels =
    List.rev
      (Array.to_list
         (Array.mapi
            (fun l name ->
              Printf.sprintf "%s x%d" name (Tree.domain_count t ~level:l))
            (Tree.level_names t)))
  in
  Printf.sprintf "%d nodes, %d levels: %s" (Tree.n t) (Tree.depth t)
    (String.concat ", " levels)

let json t =
  let module J = Telemetry.Json in
  let level l =
    let sizes = Tree.sizes t ~level:l in
    let mn = Array.fold_left min max_int sizes in
    let mx = Array.fold_left max 0 sizes in
    J.Obj
      [
        ("name", J.Str (Tree.level_name t l));
        ("domains", J.Int (Tree.domain_count t ~level:l));
        ("min_size", J.Int mn);
        ("max_size", J.Int mx);
      ]
  in
  let levels =
    List.rev (List.init (Tree.depth t) level)
  in
  J.Obj [ ("nodes", J.Int (Tree.n t)); ("levels", J.List levels) ]
