(** An immutable rooted tree of hierarchical fault domains
    (node → rack → zone → region), the correlated-failure model of
    Mills et al. (arXiv:1701.01539) grafted onto the paper's cluster.

    A tree partitions the [n] cluster nodes at every level: level [0] is
    always the nodes themselves (singleton domains), higher levels group
    them into progressively coarser units.  Domains at one level are
    disjoint and nest exactly into the domains one level up, so "fail
    any [j] domains at level [l]" is a well-defined restriction of the
    paper's "fail any [k] nodes" adversary.

    Values are immutable after construction and safe to share read-only
    across {!Engine.Pool} domains, like {!Placement.Instance}. *)

type t

val make : ?leaf_name:string -> n:int -> (string * int array) list -> t
(** [make ~n levels] builds a tree over nodes [0..n-1].  [levels] lists
    the interior levels from finest to coarsest as [(name, assign)]
    pairs, where [assign.(nd)] is the (arbitrary, non-negative) domain
    id of node [nd] at that level; ids are normalized to [0..d-1]
    preserving ascending order.  Level 0 (singletons) is implicit and
    named [leaf_name] (default ["node"]).

    @raise Invalid_argument if [n < 1], an [assign] has the wrong
    length or negative ids, level names clash, or a finer level does
    not nest inside the next coarser one. *)

val n : t -> int
(** Number of cluster nodes (leaves). *)

val depth : t -> int
(** Number of levels, including the leaf level; always ≥ 1. *)

val level_name : t -> int -> string
val level_names : t -> string array

val find_level : t -> string -> int option
(** Level index of a named level. *)

val domain_count : t -> level:int -> int

val members : t -> level:int -> int -> int array
(** [members t ~level d]: the nodes of domain [d], ascending.  The
    returned array is shared with the tree — treat it as read-only. *)

val domain_of : t -> level:int -> int -> int
(** [domain_of t ~level nd]: the domain containing node [nd]. *)

val sizes : t -> level:int -> int array
(** Fresh array of domain sizes at a level. *)

val parent : t -> level:int -> int -> int
(** [parent t ~level d]: the domain at [level + 1] containing domain
    [d].  @raise Invalid_argument at the top level. *)

val uniform : t -> level:int -> int option
(** [Some size] when every domain at the level has the same size. *)

val pp : Format.formatter -> t -> unit
(** One-line summary, e.g. [30 nodes; zone x2, rack x6, node x30]. *)
