let slots tree ~level ~cap =
  Array.fold_left
    (fun acc size -> acc + min cap size)
    0
    (Tree.sizes tree ~level)

let check_feasible tree ~level ~cap ~r =
  if cap < 1 then Error (Printf.sprintf "spread cap %d must be >= 1" cap)
  else begin
    let available = slots tree ~level ~cap in
    if available >= r then Ok ()
    else
      Error
        (Printf.sprintf
           "cannot place r=%d replicas with at most %d per %s: the %d %ss \
            offer only %d replica slots (sum of min(cap, size)); raise the \
            spread cap or use a finer topology"
           r cap
           (Tree.level_name tree level)
           (Tree.domain_count tree ~level)
           (Tree.level_name tree level)
           available)
  end

let feasible_exn ~who tree ~level ~cap ~r =
  match check_feasible tree ~level ~cap ~r with
  | Ok () -> ()
  | Error msg -> invalid_arg (who ^ ": " ^ msg)

(* Round-robin skeleton shared by both planners.  Per object: visit
   domains cyclically in [order], taking one node per eligible visit
   ([pick] chooses among the object's unused members of the domain)
   until r replicas are placed.  One-node-per-visit keeps replicas
   maximally spread even when the cap would allow clustering; the
   feasibility check guarantees termination within r cycles. *)
let place ~who ~order ~pick tree ~level ~cap ~b ~r =
  feasible_exn ~who tree ~level ~cap ~r;
  let n = Tree.n tree in
  let nd = Tree.domain_count tree ~level in
  let replicas =
    Array.init b (fun o ->
        let visit = order ~obj:o ~domains:nd in
        let used = Array.make nd 0 in
        let taken = Array.make n false in
        let chosen = ref [] in
        let needed = ref r in
        let i = ref 0 in
        while !needed > 0 do
          let d = visit !i in
          let m = Tree.members tree ~level d in
          if used.(d) < min cap (Array.length m) then begin
            let node = pick ~obj:o ~members:m ~taken in
            taken.(node) <- true;
            used.(d) <- used.(d) + 1;
            chosen := node :: !chosen;
            decr needed
          end;
          incr i
        done;
        Combin.Intset.of_array (Array.of_list !chosen))
  in
  Placement.Layout.make ~n ~r replicas

let simple tree ~level ~cap ~b ~r =
  let loads = Array.make (Tree.n tree) 0 in
  let order ~obj ~domains i = (obj + i) mod domains in
  (* Least-loaded unused member, ties to the lowest node id. *)
  let pick ~obj:_ ~members ~taken =
    let best = ref (-1) in
    Array.iter
      (fun node ->
        if not taken.(node) then
          if !best = -1 || loads.(node) < loads.(!best) then best := node)
      members;
    loads.(!best) <- loads.(!best) + 1;
    !best
  in
  place ~who:"Topology.Spread.simple" ~order ~pick tree ~level ~cap ~b ~r

let random ~rng tree ~level ~cap ~b ~r =
  let order ~obj:_ ~domains =
    let perm = Array.init domains Fun.id in
    Combin.Rng.shuffle rng perm;
    fun i -> perm.(i mod domains)
  in
  let pick ~obj:_ ~members ~taken =
    let unused = Array.of_list (List.filter (fun node -> not taken.(node)) (Array.to_list members)) in
    unused.(Combin.Rng.int rng (Array.length unused))
  in
  place ~who:"Topology.Spread.random" ~order ~pick tree ~level ~cap ~b ~r

let max_per_domain layout tree ~level =
  if layout.Placement.Layout.n <> Tree.n tree then
    invalid_arg "Topology.Spread.max_per_domain: layout/topology n mismatch";
  let worst = ref 0 in
  let counts = Array.make (Tree.domain_count tree ~level) 0 in
  Array.iter
    (fun replicas ->
      Array.iter
        (fun node ->
          let d = Tree.domain_of tree ~level node in
          counts.(d) <- counts.(d) + 1;
          if counts.(d) > !worst then worst := counts.(d))
        replicas;
      Array.iter
        (fun node -> counts.(Tree.domain_of tree ~level node) <- 0)
        replicas)
    layout.Placement.Layout.replicas;
  !worst
