(** Topology-constrained replica planners: at most [cap] replicas of
    any one object inside each domain of a chosen level.

    A spread-capped placement buys domain-failure immunity directly:
    failing [j] domains removes at most [j·cap] replicas of any object,
    so for [j ≤ ⌊(s−1)/cap⌋] no object can die.  {!Strategies} wraps
    these planners as registry strategies. *)

val slots : Tree.t -> level:int -> cap:int -> int
(** [Σ_d min(cap, |d|)]: how many replicas of one object the topology
    admits under the constraint. *)

val check_feasible :
  Tree.t -> level:int -> cap:int -> r:int -> (unit, string) result
(** [Ok ()] iff [slots >= r]; the error is a one-line actionable
    message naming the level, cap and shortfall. *)

val simple :
  Tree.t -> level:int -> cap:int -> b:int -> r:int -> Placement.Layout.t
(** Deterministic round-robin: object [o] starts at domain
    [o mod domains] and cycles, taking the least-loaded unused node of
    each eligible domain (ties to the lowest id), one per visit, until
    [r] replicas are placed.  @raise Invalid_argument when infeasible
    (message of {!check_feasible}). *)

val random :
  rng:Combin.Rng.t ->
  Tree.t -> level:int -> cap:int -> b:int -> r:int -> Placement.Layout.t
(** Randomized variant: per object a fresh domain permutation, one
    uniformly random unused node per visit, same cap discipline.
    @raise Invalid_argument when infeasible. *)

val max_per_domain : Placement.Layout.t -> Tree.t -> level:int -> int
(** The realized spread: the largest number of replicas any object has
    inside one domain of the level (for tests and [explain]). *)
