(** Compact textual topology specs and JSON summaries.

    The grammar is [NAME:COUNT(/NAME:COUNT)*], coarsest level first,
    with the last component counting leaves per deepest interior
    domain — e.g. ["zone:2/rack:4/node:8"] is 2 zones × 4 racks × 8
    nodes = 64 nodes.  Parsing follows {!Placement.Codec}'s
    conventions: a [result] with a one-line, actionable error message
    naming the offending component. *)

val parse : string -> (Tree.t, string) result
(** Parse a spec.  Counts must be ≥ 1, names distinct (a letter
    followed by letters, digits, underscores or dashes); the total node
    count is capped at 1,000,000. *)

val parse_exn : string -> Tree.t
(** @raise Invalid_argument with the {!parse} error message. *)

val summary : Tree.t -> string
(** One line, e.g. ["30 nodes, 3 levels: zone x2, rack x6, node x30"]. *)

val json : Tree.t -> Telemetry.Json.t
(** [{"nodes": n, "levels": [{"name", "domains", "min_size",
    "max_size"} ...]}], coarsest level first — the [--json] payload of
    the CLI's [topology] subcommand. *)
