(** The domain-aware worst-case adversary: fail the [j] domains at one
    level of a fault-domain tree that kill the most objects.

    This is the paper's Definition-1 adversary with its choice set
    restricted from arbitrary [k]-node subsets to unions of [j]
    same-level domains.  On a {!Build.flat} tree (singleton racks) the
    rack-level adversary therefore {e is} the node adversary and finds
    the same availability.

    Search discipline (identical to {!Placement.Adversary}, see
    DESIGN.md §6/§9/§15): exhaustive enumeration when [C(domains, j)]
    is small, otherwise the work-stealing sharded B&B frontier
    ({!Placement.Bb}) over the domain kernel — prefix tasks cut at a
    deterministic spawn depth, one global node budget, pruning against
    the shared {!Engine.Bound} incumbent, and a (value, lexicographic)
    merge — so the reported attack is bit-identical at any [-j] even
    though the explored node set is not. *)

type attack = {
  failed_domains : int array;  (** chosen domain ids, ascending *)
  failed_nodes : int array;  (** their member nodes, ascending *)
  failed_objects : int;
  exact : bool;  (** false only when the global node budget ran out *)
}

val eval :
  Placement.Layout.t -> s:int -> Tree.t -> level:int -> int array -> int
(** Objects killed by failing the given domains. *)

val greedy :
  ?pool:Engine.Pool.t ->
  Placement.Layout.t -> s:int -> Tree.t -> level:int -> j:int -> attack
(** Pick domains one at a time by marginal damage ([exact = false]).
    Runs sharded CELF over the domain kernel
    ({!Placement.Kernel.select_greedy_sharded}); picks and statistics
    are bit-identical at any [pool] size. *)

val exhaustive :
  Placement.Layout.t -> s:int -> Tree.t -> level:int -> j:int -> attack
(** Sequential enumeration of every [j]-subset of domains in
    lexicographic order, greedy-seeded with strict improvement; always
    exact.  Meant for small [C(domains, j)] — {!attack} dispatches. *)

val exact :
  ?budget:int ->
  ?spawn_depth:int ->
  ?pool:Engine.Pool.t ->
  Placement.Layout.t -> s:int -> Tree.t -> level:int -> j:int -> attack
(** Branch-and-bound over domain subsets on the shared frontier
    ([budget]: ONE global search-node allowance, default 5e7, drawn in
    blocks by the work-stealing tasks; [spawn_depth] forces the task
    cut, clamped to [1, j] — tests only, [j] is the sequential
    reference).  Returns the same attack as {!exhaustive} whenever it
    completes ([exact = true]); on budget exhaustion it falls back to
    the greedy attack with [exact = false], deterministically. *)

val attack :
  ?pool:Engine.Pool.t ->
  ?budget:int ->
  ?exhaustive_limit:int ->
  Placement.Layout.t -> s:int -> Tree.t -> level:int -> j:int -> attack
(** Dispatch: {!exhaustive} when [C(domains, j) <= exhaustive_limit]
    (default 20,000), else {!exact}.  Telemetry lands under
    [topology/adversary/...].
    @raise Invalid_argument when the layout and tree disagree on [n],
    or [j] is out of range. *)

val avail : Placement.Layout.t -> attack -> int
(** [b − failed_objects]. *)
