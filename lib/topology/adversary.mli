(** The domain-aware worst-case adversary: fail the [j] domains at one
    level of a fault-domain tree that kill the most objects.

    This is the paper's Definition-1 adversary with its choice set
    restricted from arbitrary [k]-node subsets to unions of [j]
    same-level domains.  On a {!Build.flat} tree (singleton racks) the
    rack-level adversary therefore {e is} the node adversary and finds
    the same availability.

    Search discipline (identical to {!Placement.Adversary}, see
    DESIGN.md §6/§9): exhaustive enumeration when [C(domains, j)] is
    small, otherwise branch-and-bound parallelized over the first-domain
    choices through {!Engine.Pool}, seeded by the greedy attack, with
    the shared {!Engine.Bound} incumbent read once before dispatch and
    per-branch pre-split node budgets — so the result is bit-identical
    at any [-j]. *)

type attack = {
  failed_domains : int array;  (** chosen domain ids, ascending *)
  failed_nodes : int array;  (** their member nodes, ascending *)
  failed_objects : int;
  exact : bool;  (** false only when the branch budget truncated *)
}

val eval :
  Placement.Layout.t -> s:int -> Tree.t -> level:int -> int array -> int
(** Objects killed by failing the given domains. *)

val greedy :
  ?pool:Engine.Pool.t ->
  Placement.Layout.t -> s:int -> Tree.t -> level:int -> j:int -> attack
(** Pick domains one at a time by marginal damage ([exact = false]).
    Runs sharded CELF over the domain kernel
    ({!Placement.Kernel.select_greedy_sharded}); picks and statistics
    are bit-identical at any [pool] size. *)

val exhaustive :
  Placement.Layout.t -> s:int -> Tree.t -> level:int -> j:int -> attack
(** Sequential enumeration of every [j]-subset of domains in
    lexicographic order, greedy-seeded with strict improvement; always
    exact.  Meant for small [C(domains, j)] — {!attack} dispatches. *)

val exact :
  ?budget:int ->
  ?pool:Engine.Pool.t ->
  Placement.Layout.t -> s:int -> Tree.t -> level:int -> j:int -> attack
(** Branch-and-bound over domain subsets ([budget]: total search-node
    allowance, default 5e7, pre-split per branch).  Returns the same
    attack as {!exhaustive} whenever it completes ([exact = true]). *)

val attack :
  ?pool:Engine.Pool.t ->
  ?budget:int ->
  ?exhaustive_limit:int ->
  Placement.Layout.t -> s:int -> Tree.t -> level:int -> j:int -> attack
(** Dispatch: {!exhaustive} when [C(domains, j) <= exhaustive_limit]
    (default 20,000), else {!exact}.  Telemetry lands under
    [topology/adversary/...].
    @raise Invalid_argument when the layout and tree disagree on [n],
    or [j] is out of range. *)

val avail : Placement.Layout.t -> attack -> int
(** [b − failed_objects]. *)
