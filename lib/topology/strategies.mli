(** The spread families as {!Placement.Strategy} registry entries.

    [simple-spread] and [random-spread] plan through {!Spread} against
    an ambient topology configuration — the registry's [plan] signature
    has no topology parameter, so consumers install one first
    ({!configure}; the CLI does this from [--topology]/[--spread]).
    Without a configuration both families decline loudly
    ([Invalid_argument] with a one-line fix), per the registry's
    "strategies may decline, not lie" rule (DESIGN.md §7).

    Linking this module registers both families; call
    {!ensure_registered} from binaries that only reach them through the
    registry so the module is linked at all. *)

type config = { tree : Tree.t; level : int; cap : int }

val configure : ?level:int -> ?cap:int -> Tree.t -> unit
(** Install the ambient topology.  [level] defaults to the first level
    above the nodes (or the node level on a depth-1 tree), [cap] — the
    max replicas per domain — to 1.
    @raise Invalid_argument on a bad level or [cap < 1]. *)

val config : unit -> config option
val clear_config : unit -> unit

module Simple_spread : Placement.Strategy.S
module Random_spread : Placement.Strategy.S

val ensure_registered : unit -> unit
(** No-op whose call forces this module (and hence the registrations)
    to be linked. *)
