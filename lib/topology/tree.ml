type t = {
  n : int;
  level_names : string array;  (* level_names.(0) is the leaf level *)
  members : int array array array;  (* members.(l).(d): nodes, ascending *)
  node_domain : int array array;  (* node_domain.(l).(nd) *)
}

(* Renumber arbitrary non-negative domain ids to 0..d-1, preserving the
   ascending order of the original ids. *)
let normalize ~name assign =
  let ids = Combin.Intset.of_array assign in
  Array.iter
    (fun id ->
      if id < 0 then
        invalid_arg
          (Printf.sprintf "Topology.Tree.make: level %S has a negative domain id"
             name))
    ids;
  let rank id =
    (* ids is sorted distinct; binary search. *)
    let lo = ref 0 and hi = ref (Array.length ids - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ids.(mid) < id then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  (Array.length ids, Array.map rank assign)

let make ?(leaf_name = "node") ~n levels =
  if n < 1 then invalid_arg "Topology.Tree.make: n < 1";
  List.iter
    (fun (name, assign) ->
      if String.length name = 0 then
        invalid_arg "Topology.Tree.make: empty level name";
      if Array.length assign <> n then
        invalid_arg
          (Printf.sprintf
             "Topology.Tree.make: level %S assigns %d nodes, expected %d" name
             (Array.length assign) n))
    levels;
  let names = leaf_name :: List.map fst levels in
  let sorted = List.sort_uniq compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Topology.Tree.make: duplicate level name";
  let interior =
    List.map (fun (name, assign) -> normalize ~name assign) levels
  in
  let node_domain =
    Array.of_list
      (Array.init n Fun.id :: List.map snd interior)
  in
  let counts = Array.of_list (n :: List.map fst interior) in
  let depth = Array.length counts in
  (* Nesting: two nodes sharing a domain at level l must share one at
     every coarser level. *)
  for l = 0 to depth - 2 do
    let coarse_of = Array.make counts.(l) (-1) in
    for nd = 0 to n - 1 do
      let d = node_domain.(l).(nd) and c = node_domain.(l + 1).(nd) in
      if coarse_of.(d) = -1 then coarse_of.(d) <- c
      else if coarse_of.(d) <> c then
        invalid_arg
          (Printf.sprintf
             "Topology.Tree.make: level %S does not nest inside level %S \
              (domain %d spans two coarser domains)"
             (List.nth names l) (List.nth names (l + 1)) d)
    done
  done;
  let members =
    Array.init depth (fun l ->
        let buckets = Array.make counts.(l) [] in
        for nd = n - 1 downto 0 do
          let d = node_domain.(l).(nd) in
          buckets.(d) <- nd :: buckets.(d)
        done;
        Array.map Array.of_list buckets)
  in
  { n; level_names = Array.of_list names; members; node_domain }

let n t = t.n
let depth t = Array.length t.level_names

let check_level t level =
  if level < 0 || level >= depth t then
    invalid_arg
      (Printf.sprintf "Topology.Tree: level %d out of range [0, %d)" level
         (depth t))

let level_name t l =
  check_level t l;
  t.level_names.(l)

let level_names t = Array.copy t.level_names

let find_level t name =
  let found = ref None in
  Array.iteri
    (fun l nm -> if nm = name && !found = None then found := Some l)
    t.level_names;
  !found

let domain_count t ~level =
  check_level t level;
  Array.length t.members.(level)

let members t ~level d =
  check_level t level;
  t.members.(level).(d)

let domain_of t ~level nd =
  check_level t level;
  t.node_domain.(level).(nd)

let sizes t ~level =
  check_level t level;
  Array.map Array.length t.members.(level)

let parent t ~level d =
  check_level t level;
  if level >= depth t - 1 then
    invalid_arg "Topology.Tree.parent: top level has no parent";
  t.node_domain.(level + 1).(t.members.(level).(d).(0))

let uniform t ~level =
  let s = sizes t ~level in
  let sz = s.(0) in
  if Array.for_all (fun x -> x = sz) s then Some sz else None

let pp fmt t =
  Format.fprintf fmt "%d nodes; %s" t.n
    (String.concat ", "
       (List.rev
          (Array.to_list
             (Array.mapi
                (fun l name ->
                  Printf.sprintf "%s x%d" name (Array.length t.members.(l)))
                t.level_names))))
