let validate tree ~level ~j =
  let d = Tree.domain_count tree ~level in
  if j < 0 || j > d then
    invalid_arg
      (Printf.sprintf
         "Topology.Failset: j=%d out of range [0, %d] at level %S" j d
         (Tree.level_name tree level))

let count tree ~level ~j =
  Combin.Binomial.exact_opt (Tree.domain_count tree ~level) j

let nodes tree ~level domains =
  (* Domains at one level are disjoint: concatenation has no duplicates
     and Intset.of_array only sorts. *)
  Combin.Intset.of_array
    (Array.concat
       (Array.to_list (Array.map (Tree.members tree ~level) domains)))

let iter tree ~level ~j f =
  validate tree ~level ~j;
  Combin.Subset.iter ~n:(Tree.domain_count tree ~level) ~k:j f

let sample ~rng tree ~level ~j =
  validate tree ~level ~j;
  Combin.Rng.sample_distinct rng ~n:(Tree.domain_count tree ~level) ~k:j
