let flat n = Tree.make ~n [ ("rack", Array.init n Fun.id) ]

let regular ~racks ~nodes_per_rack =
  if racks < 1 || nodes_per_rack < 1 then
    invalid_arg "Topology.Build.regular: racks and nodes_per_rack must be >= 1";
  let n = racks * nodes_per_rack in
  Tree.make ~n [ ("rack", Array.init n (fun nd -> nd / nodes_per_rack)) ]

let of_racks ?(name = "rack") racks =
  Tree.make ~n:(Array.length racks) [ (name, Array.copy racks) ]

let partition ?(name = "rack") ~n ~domains () =
  if domains < 1 || domains > n then
    invalid_arg "Topology.Build.partition: need 1 <= domains <= n";
  (* Contiguous fair split: node nd lands in group ⌊nd·domains/n⌋, so
     group sizes differ by at most one. *)
  Tree.make ~n [ (name, Array.init n (fun nd -> nd * domains / n)) ]

let nested components =
  if components = [] then invalid_arg "Topology.Build.nested: empty spec";
  List.iter
    (fun (name, c) ->
      if c < 1 then
        invalid_arg
          (Printf.sprintf "Topology.Build.nested: level %S has count %d < 1"
             name c))
    components;
  let n = List.fold_left (fun acc (_, c) -> acc * c) 1 components in
  let leaf_name = fst (List.nth components (List.length components - 1)) in
  (* Interior levels, coarsest first, skipping the leaf component.  A
     level whose subtree holds [stride] leaves assigns node nd to domain
     nd / stride. *)
  let interior = ref [] in
  let stride = ref n in
  List.iteri
    (fun i (name, c) ->
      if i < List.length components - 1 then begin
        stride := !stride / c;
        let stride = !stride in
        interior := (name, Array.init n (fun nd -> nd / stride)) :: !interior
      end)
    components;
  (* !interior is now finest-first, as Tree.make expects. *)
  Tree.make ~leaf_name ~n !interior
