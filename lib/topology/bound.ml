type report = {
  level : int;
  j : int;
  covered_nodes : int;
  naive_nodes : int;
  si : Placement.Analysis.lb_report;
}

let sorted_sizes_desc tree ~level =
  let sizes = Tree.sizes tree ~level in
  Array.sort (fun a b -> compare b a) sizes;
  sizes

let covered_nodes tree ~level ~j =
  Failset.validate tree ~level ~j;
  let sizes = sorted_sizes_desc tree ~level in
  let acc = ref 0 in
  for i = 0 to j - 1 do
    acc := !acc + sizes.(i)
  done;
  !acc

let si_report ?choose ~b ~x ~lambda ~s tree ~level ~j =
  Failset.validate tree ~level ~j;
  let sizes = sorted_sizes_desc tree ~level in
  let covered = ref 0 in
  for i = 0 to j - 1 do
    covered := !covered + sizes.(i)
  done;
  let naive = if j = 0 then 0 else j * sizes.(0) in
  let si =
    Placement.Analysis.lb_avail_si_report ?choose ~b ~x ~lambda ~k:!covered ~s
      ()
  in
  { level; j; covered_nodes = !covered; naive_nodes = naive; si }

let load_report ?choose ~b ~r ~s tree ~level ~j =
  let n = Tree.n tree in
  let lambda = ((r * b) + n - 1) / n in
  si_report ?choose ~b ~x:0 ~lambda ~s tree ~level ~j
