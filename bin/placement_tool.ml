(* placement-tool: command-line front end to the replica-placement library.

   Subcommands:
     plan      compute a Combo placement plan and its availability bound
     analyze   worst-case analysis of Random placement (Theorem 2)
     designs   list the design catalogue for given (x, r)
     gap       chunked capacity plan for a system size (Observation 2)
     simulate  materialize a placement and attack it
*)

open Cmdliner

let setup_logs () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ())

(* Shared arguments, paper notation. *)
let n_arg =
  Arg.(required & opt (some int) None & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let b_arg =
  Arg.(required & opt (some int) None & info [ "b"; "objects" ] ~docv:"B" ~doc:"Number of objects.")

let r_arg =
  Arg.(value & opt int 3 & info [ "r"; "replicas" ] ~docv:"R" ~doc:"Replicas per object.")

let s_arg =
  Arg.(
    value
    & opt int 2
    & info [ "s"; "fatal" ] ~docv:"S"
        ~doc:"Number of replica failures that fail an object (1 <= s <= r).")

let k_arg =
  Arg.(value & opt int 2 & info [ "k"; "failures" ] ~docv:"K" ~doc:"Number of node failures planned for.")

let params_term =
  let combine n b r s k =
    match Placement.Params.validate { Placement.Params.b; r; s; n; k } with
    | Ok p -> `Ok p
    | Error msg -> `Error (false, "invalid parameters: " ^ msg)
  in
  Term.(ret (const combine $ n_arg $ b_arg $ r_arg $ s_arg $ k_arg))

let jobs_arg =
  Arg.(
    value
    & opt int (Engine.Pool.default_domains ())
    & info [ "j"; "jobs" ] ~docv:"J"
        ~doc:
          "Worker domains for the parallel adversary (default: the number of \
           cores). Results are bit-identical at any $(docv); 1 runs the \
           sequential reference path.")

let with_pool jobs f =
  let jobs = max 1 jobs in
  if jobs = 1 then f None
  else Engine.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))

(* ------------------------------------------------------------------ *)
(* plan *)

let plan_cmd =
  let run (p : Placement.Params.t) =
    setup_logs ();
    let cfg = Placement.Combo.optimize p in
    Fmt.pr "Combo placement plan for %a@." Placement.Params.pp p;
    Array.iteri
      (fun x lambda ->
        if lambda > 0 then begin
          let level = cfg.Placement.Combo.levels.(x) in
          let name =
            match level.Placement.Combo.entry with
            | Some e -> e.Designs.Registry.name
            | None -> "-"
          in
          Fmt.pr "  Simple(%d, %d): nx=%d design=%s objects=%d@." x lambda
            level.Placement.Combo.nx name
            cfg.Placement.Combo.assigned.(x)
        end)
      cfg.Placement.Combo.lambdas;
    let pr_avail = Placement.Random_analysis.pr_avail p in
    Fmt.pr "guaranteed available objects (worst %d failures): %d / %d@."
      p.Placement.Params.k cfg.Placement.Combo.lb p.Placement.Params.b;
    Fmt.pr "Random placement, probable availability:          %d / %d@."
      pr_avail p.Placement.Params.b;
    if cfg.Placement.Combo.lb > pr_avail then
      Fmt.pr "=> Combo saves %d of the %d objects Random probably loses.@."
        (cfg.Placement.Combo.lb - pr_avail)
        (p.Placement.Params.b - pr_avail)
    else if cfg.Placement.Combo.lb < pr_avail then
      Fmt.pr "=> Random probably does better here (by %d objects).@."
        (pr_avail - cfg.Placement.Combo.lb)
    else Fmt.pr "=> Tie.@."
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Compute a Combo placement plan and its availability bound.")
    Term.(const run $ params_term)

(* ------------------------------------------------------------------ *)
(* analyze *)

let analyze_cmd =
  let run (p : Placement.Params.t) =
    setup_logs ();
    let prob = Placement.Random_analysis.single_object_fail_probability p in
    Fmt.pr "Worst-case analysis of load-balanced Random placement@.";
    Fmt.pr "  parameters: %a@." Placement.Params.pp p;
    Fmt.pr "  per-object kill probability under a fixed worst K: %.3e@." prob;
    Fmt.pr "  prAvail_rnd (Definition 6): %d / %d (%.4f)@."
      (Placement.Random_analysis.pr_avail p)
      p.Placement.Params.b
      (Placement.Random_analysis.pr_avail_fraction p);
    if p.Placement.Params.s = 1 && 2 * p.Placement.Params.k < p.Placement.Params.n
    then
      Fmt.pr "  Lemma 4 upper bound (s = 1): %.1f@."
        (Placement.Random_analysis.s1_upper_bound p)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Worst-case availability analysis of Random placement.")
    Term.(const run $ params_term)

(* ------------------------------------------------------------------ *)
(* designs *)

let designs_cmd =
  let x_arg =
    Arg.(value & opt int 1 & info [ "x" ] ~docv:"X" ~doc:"Overlap bound (strength t = x+1).")
  in
  let max_v_arg =
    Arg.(value & opt int 100 & info [ "max-v" ] ~docv:"V" ~doc:"Largest design size to list.")
  in
  let mu_arg =
    Arg.(value & opt int 1 & info [ "max-mu" ] ~docv:"MU" ~doc:"Largest design multiplicity.")
  in
  let run x r max_v max_mu =
    setup_logs ();
    let entries =
      Designs.Registry.entries ~max_mu ~strength:(x + 1) ~block_size:r ~max_v ()
    in
    Fmt.pr "Catalogue of %d-(v, %d, mu) designs with v <= %d, mu <= %d@."
      (x + 1) r max_v max_mu;
    List.iter
      (fun (e : Designs.Registry.entry) ->
        Fmt.pr "  v=%-4d mu=%-2d blocks=%-8d %-30s %s@." e.v e.mu e.blocks
          e.name
          (if Designs.Registry.is_materialized e then "[materialized]"
           else "[literature]"))
      entries
  in
  Cmd.v
    (Cmd.info "designs" ~doc:"List the design catalogue for a given (x, r).")
    Term.(const run $ x_arg $ r_arg $ max_v_arg $ mu_arg)

(* ------------------------------------------------------------------ *)
(* gap *)

let gap_cmd =
  let x_arg =
    Arg.(value & opt int 1 & info [ "x" ] ~docv:"X" ~doc:"Overlap bound (strength t = x+1).")
  in
  let mu_arg =
    Arg.(value & opt int 1 & info [ "max-mu" ] ~docv:"MU" ~doc:"Largest common multiplicity.")
  in
  let run n x r max_mu =
    setup_logs ();
    match
      Designs.Chunking.best_plan ~max_mu ~strength:(x + 1) ~block_size:r ~n ()
    with
    | None -> Fmt.pr "No chunk plan found for n=%d, x=%d, r=%d.@." n x r
    | Some plan ->
        Fmt.pr "Best chunk plan for n=%d, x=%d, r=%d (mu <= %d):@." n x r max_mu;
        List.iter
          (fun (e : Designs.Registry.entry) ->
            Fmt.pr "  chunk: %s (v=%d, mu=%d, %d blocks)@." e.name e.v e.mu
              e.blocks)
          plan.Designs.Chunking.chunks;
        Fmt.pr "  lambda=%d capacity=%d ideal=%d gap=%.4f@."
          plan.Designs.Chunking.lambda plan.Designs.Chunking.capacity
          (Designs.Chunking.ideal_capacity ~strength:(x + 1) ~block_size:r
             ~lambda:plan.Designs.Chunking.lambda n)
          (Designs.Chunking.capacity_gap ~strength:(x + 1) ~block_size:r ~n plan)
  in
  Cmd.v
    (Cmd.info "gap" ~doc:"Chunked capacity plan for a system size (Observation 2).")
    Term.(const run $ n_arg $ x_arg $ r_arg $ mu_arg)

(* ------------------------------------------------------------------ *)
(* simulate *)

let attack_cmd =
  let file_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "layout" ] ~docv:"FILE" ~doc:"Layout file written by simulate --out.")
  in
  let s_only =
    Arg.(value & opt int 2 & info [ "s"; "fatal" ] ~docv:"S" ~doc:"Fatality threshold.")
  in
  let k_only =
    Arg.(value & opt int 2 & info [ "k"; "failures" ] ~docv:"K" ~doc:"Nodes to fail.")
  in
  let run file s k jobs =
    setup_logs ();
    match Placement.Codec.load file with
    | Error msg ->
        Fmt.epr "cannot load %s: %s@." file msg;
        exit 1
    | Ok layout ->
        let attack =
          with_pool jobs (fun pool -> Placement.Adversary.best ?pool layout ~s ~k)
        in
        Fmt.pr "Worst-case attack on %s (b=%d, n=%d, r=%d)@." file
          (Placement.Layout.b layout)
          layout.Placement.Layout.n layout.Placement.Layout.r;
        Fmt.pr "  failed nodes: %a@."
          Fmt.(brackets (array ~sep:comma int))
          attack.Placement.Adversary.failed_nodes;
        Fmt.pr "  available objects: %d / %d (adversary %s)@."
          (Placement.Adversary.avail layout ~s attack)
          (Placement.Layout.b layout)
          (if attack.Placement.Adversary.exact then "exact" else "heuristic")
  in
  Cmd.v
    (Cmd.info "attack" ~doc:"Attack a layout exported with simulate --out.")
    Term.(const run $ file_arg $ s_only $ k_only $ jobs_arg)

let simulate_cmd =
  let strategy_arg =
    Arg.(
      value
      & opt (enum [ ("combo", `Combo); ("random", `Random) ]) `Combo
      & info [ "strategy" ] ~docv:"STRAT" ~doc:"Placement strategy: combo or random.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also export the layout to a file.")
  in
  let run (p : Placement.Params.t) strategy seed out jobs =
    setup_logs ();
    let rng = Combin.Rng.create seed in
    let layout =
      match strategy with
      | `Combo -> Placement.Combo.materialize (Placement.Combo.optimize p)
      | `Random -> Placement.Random_placement.place ~rng p
    in
    let attack =
      with_pool jobs (fun pool ->
          Placement.Adversary.best ?pool ~rng layout ~s:p.Placement.Params.s
            ~k:p.Placement.Params.k)
    in
    Fmt.pr "Simulated worst-case attack on a %s placement@."
      (match strategy with `Combo -> "Combo" | `Random -> "Random");
    Fmt.pr "  failed nodes: %a@."
      Fmt.(brackets (array ~sep:comma int))
      attack.Placement.Adversary.failed_nodes;
    Fmt.pr "  failed objects: %d / %d  (adversary %s)@."
      attack.Placement.Adversary.failed_objects p.Placement.Params.b
      (if attack.Placement.Adversary.exact then "exact" else "heuristic");
    Fmt.pr "  available: %d@."
      (Placement.Adversary.avail layout ~s:p.Placement.Params.s attack);
    match out with
    | None -> ()
    | Some path ->
        Placement.Codec.save path layout;
        Fmt.pr "  layout written to %s@." path
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Materialize a placement and attack it.")
    Term.(const run $ params_term $ strategy_arg $ seed_arg $ out_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* recommend *)

let recommend_cmd =
  let target_arg =
    Arg.(
      value
      & opt float 99.9
      & info [ "target" ] ~docv:"PCT"
          ~doc:"Required guaranteed availability, as a percentage of b.")
  in
  let run n b k target =
    setup_logs ();
    Fmt.pr
      "Cheapest (r, s) guaranteeing >= %.2f%% of %d objects against the worst %d of %d nodes@."
      target b k n;
    let found = ref false in
    List.iter
      (fun r ->
        if not !found && r <= n then
          List.iter
            (fun s ->
              if (not !found) && s <= r && k >= s then begin
                match Placement.Params.validate { Placement.Params.b; r; s; n; k } with
                | Error _ -> ()
                | Ok p ->
                    let cfg = Placement.Combo.optimize p in
                    let pct =
                      100.0 *. float_of_int cfg.Placement.Combo.lb /. float_of_int b
                    in
                    Fmt.pr "  r=%d s=%d: guarantee %d (%.3f%%)%s@." r s
                      cfg.Placement.Combo.lb pct
                      (if pct >= target then "  <- RECOMMENDED" else "");
                    if pct >= target then found := true
              end)
            (List.sort_uniq compare [ r; r - (r / 2); 2; 1 ]
            |> List.rev) (* read-any first, then majority/2/write-all *))
      [ 2; 3; 4; 5 ];
    if not !found then
      Fmt.pr "  no configuration with r <= 5 reaches the target; lower the target or k.@."
  in
  Cmd.v
    (Cmd.info "recommend"
       ~doc:"Find the cheapest replication config meeting an availability target.")
    Term.(const run $ n_arg $ b_arg $ k_arg $ target_arg)

let main_cmd =
  let doc = "replica placement for availability in the worst case (ICDCS'15 reproduction)" in
  Cmd.group
    (Cmd.info "placement-tool" ~version:"1.0.0" ~doc)
    [ plan_cmd; analyze_cmd; designs_cmd; gap_cmd; simulate_cmd; attack_cmd; recommend_cmd ]

let () = exit (Cmd.eval main_cmd)
