(* placement-tool: command-line front end to the replica-placement library.

   Subcommands:
     plan        compute a placement plan and its availability bound
     analyze     worst-case analysis of a strategy (Theorem 2 for random)
     designs     list the design catalogue for given (x, r)
     gap         chunked capacity plan for a system size (Observation 2)
     simulate    materialize a placement and attack it
     attack      attack an exported layout, or a strategy directly
     churn       replay an event stream through the continuous placement
                 engine with per-event incremental worst-case re-scoring
     strategies  list the registered placement strategies
     recommend   cheapest (r, s) meeting an availability target
     topology    parse and describe a fault-domain topology spec

   Placement families are dispatched through the Placement.Strategies
   registry: every subcommand taking --strategy accepts any registered
   name and rejects unknown ones with the list of those available.
   --topology SPEC on plan/analyze/attack/simulate installs a
   fault-domain tree: the spread strategies plan against it and the
   domain adversary reports the worst j same-level domain failures. *)

open Cmdliner

(* The spread families register themselves at module-init time; force
   the linker to keep lib/topology's Strategies module. *)
let () = Topology.Strategies.ensure_registered ()

let setup_logs () =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ())

let die msg =
  Fmt.epr "%s@." msg;
  exit 1

(* Shared arguments, paper notation. *)
let n_arg =
  Arg.(required & opt (some int) None & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let b_arg =
  Arg.(required & opt (some int) None & info [ "b"; "objects" ] ~docv:"B" ~doc:"Number of objects.")

let r_arg =
  Arg.(value & opt int 3 & info [ "r"; "replicas" ] ~docv:"R" ~doc:"Replicas per object.")

let s_arg =
  Arg.(
    value
    & opt int 2
    & info [ "s"; "fatal" ] ~docv:"S"
        ~doc:"Number of replica failures that fail an object (1 <= s <= r).")

let k_arg =
  Arg.(value & opt int 2 & info [ "k"; "failures" ] ~docv:"K" ~doc:"Number of node failures planned for.")

(* Explicit, flag-naming rejections for the parameter mistakes users
   actually make; Params.validate remains the backstop for the rest. *)
let validate_params ~n ~b ~r ~s ~k =
  let err fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  if b <= 0 then
    err "b = %d: -b/--objects must be a positive object count" b
  else if r <= 0 then
    err "r = %d: -r/--replicas must be a positive replica count" r
  else if s < 1 then
    err "s = %d: -s/--fatal must be at least 1 (one replica loss can always be fatal)" s
  else if s > r then
    err
      "s = %d exceeds r = %d: an object only has r replicas to lose, so \
       -s/--fatal must satisfy 1 <= s <= r (raise -r or lower -s)"
      s r
  else if n < r then
    err
      "n = %d is smaller than r = %d: r replicas need r distinct nodes; \
       raise -n/--nodes or lower -r/--replicas"
      n r
  else if k >= n then
    err
      "k = %d with only n = %d nodes: planning for every node (or more) to \
       fail guarantees nothing survives; -k/--failures must satisfy s <= k < n"
      k n
  else if k < s then
    err
      "k = %d is below s = %d: fewer simultaneous failures than the fatality \
       threshold cannot fail any object, so there is nothing to plan; raise \
       -k/--failures"
      k s
  else Placement.Params.validate { Placement.Params.b; r; s; n; k }

let params_term =
  let combine n b r s k =
    match validate_params ~n ~b ~r ~s ~k with
    | Ok p -> `Ok p
    | Error msg -> `Error (false, "invalid parameters: " ^ msg)
  in
  Term.(ret (const combine $ n_arg $ b_arg $ r_arg $ s_arg $ k_arg))

let jobs_arg =
  Arg.(
    value
    & opt int (Engine.Pool.default_domains ())
    & info [ "j"; "jobs" ] ~docv:"J"
        ~doc:
          "Worker domains for the parallel adversary (default: the number of \
           cores). Results are bit-identical at any $(docv); 1 runs the \
           sequential reference path.")

let jobs_term =
  let check j =
    if j < 1 then
      `Error
        ( false,
          Printf.sprintf
            "-j %d: the worker-domain count must be at least 1 (use -j 1 for \
             the sequential path, or omit -j to use every core)"
            j )
    else `Ok j
  in
  Term.(ret (const check $ jobs_arg))

let with_pool jobs f =
  if jobs = 1 then f None
  else Engine.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))

(* ------------------------------------------------------------------ *)
(* Telemetry and structured output.

   --metrics/--trace enable the (otherwise disabled, near-zero-cost)
   Telemetry registry around the subcommand body and export its snapshot
   when the body finishes: metrics as a placement/v1 JSON envelope,
   traces in the Chrome trace-event format (deliberately unwrapped —
   chrome://tracing and Perfetto expect the raw format). *)

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write run telemetry (search statistics, cache hits, pool \
           utilization) to $(docv) as a placement/v1 JSON document; use - \
           for stdout.  Deterministic counts appear under \"values\", \
           wall-clock and scheduling data under \"timings\".")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON file of the run's timed spans to \
           $(docv) (load it in chrome://tracing or Perfetto); use - for \
           stdout.  Implies collecting telemetry.")

let json_flag =
  Arg.(
    value
    & flag
    & info [ "json" ]
        ~doc:
          "Emit a machine-readable placement/v1 JSON envelope instead of the \
           human-readable report.")

let write_doc path content =
  if path = "-" then print_string content
  else
    match open_out path with
    | exception Sys_error msg -> die (Printf.sprintf "cannot write %s" msg)
    | oc ->
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc content)

let print_envelope ~command data =
  print_string
    (Telemetry.Json.to_string ~indent:2
       (Placement.Codec.json_envelope ~command data)
    ^ "\n")

let with_telemetry ~metrics ~trace f =
  match (metrics, trace) with
  | None, None -> f ()
  | _ ->
      Telemetry.Registry.reset ();
      Telemetry.Control.set_enabled true;
      if trace <> None then Telemetry.Control.set_tracing true;
      Fun.protect
        ~finally:(fun () ->
          (* Gauges no-op once telemetry is off, so the resource sample
             must land before the switch. *)
          Telemetry.Resource.sample ();
          Telemetry.Control.set_enabled false;
          Telemetry.Control.set_tracing false;
          (match metrics with
          | None -> ()
          | Some path ->
              let snap = Telemetry.Registry.snapshot () in
              write_doc path
                (Telemetry.Json.to_string ~indent:2
                   (Placement.Codec.json_envelope ~command:"metrics"
                      (Telemetry.Export.metrics_json snap))
                ^ "\n"));
          match trace with
          | None -> ()
          | Some path ->
              write_doc path
                (Telemetry.Json.to_string (Telemetry.Export.trace_json ()) ^ "\n"))
        f

(* The shared per-command I/O surface: every subcommand that emits a
   machine-readable envelope and/or telemetry threads this one record,
   so the flags parse, validate and initialize identically everywhere
   ([with_io] replaces the per-command setup_logs/with_telemetry
   boilerplate). *)
type io = { json : bool; metrics : string option; trace : string option }

let io_term =
  let combine json metrics trace = { json; metrics; trace } in
  Term.(const combine $ json_flag $ metrics_arg $ trace_arg)

let with_io io f =
  setup_logs ();
  with_telemetry ~metrics:io.metrics ~trace:io.trace f

(* --random N,B,R,SEED: a synthetic load-balanced Random instance, the
   scaling workhorse — attack and analyze accept it in place of a layout
   file or explicit -n/-b, so large instances need no on-disk export. *)

let random_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "random" ] ~docv:"N,B,R,SEED"
        ~doc:
          "Generate a synthetic load-balanced Random placement of $(docv) \
           (nodes, objects, replicas, PRNG seed) and run on it instead of a \
           layout file or an explicit instance.")

let parse_random spec =
  match List.map String.trim (String.split_on_char ',' spec) with
  | [ n; b; r; seed ] -> (
      match
        ( int_of_string_opt n,
          int_of_string_opt b,
          int_of_string_opt r,
          int_of_string_opt seed )
      with
      | Some n, Some b, Some r, Some seed -> Ok (n, b, r, seed)
      | _ ->
          Error
            (Printf.sprintf "--random %s: all four fields must be integers" spec))
  | _ ->
      Error
        (Printf.sprintf
           "--random %s: expected four comma-separated fields N,B,R,SEED" spec)

(* --strategy NAME, resolved through the registry; unknown names list the
   registered strategies. *)
let strategy_arg ~default =
  Arg.(
    value
    & opt string default
    & info [ "strategy" ] ~docv:"STRAT"
        ~doc:
          "Placement strategy (see the $(b,strategies) subcommand for the \
           registered names).")

let strategy_term ~default =
  let resolve name =
    match Placement.Strategies.find name with
    | Some s -> `Ok s
    | None ->
        `Error
          ( false,
            Printf.sprintf "unknown strategy %S; available strategies: %s" name
              (String.concat ", " (Placement.Strategies.names ())) )
  in
  Term.(ret (const resolve $ strategy_arg ~default))

let plan_layout (module S : Placement.Strategy.S) ?rng inst =
  try Ok (S.plan ?rng inst) with
  | Placement.Optimal.Too_large ->
      Error
        (Printf.sprintf
           "strategy %s: instance too large for exhaustive search (cost %.3g); \
            use a heuristic strategy instead"
           S.name
           (let p = Placement.Instance.params inst in
            Placement.Optimal.search_cost ~n:p.Placement.Params.n
              ~r:p.Placement.Params.r ~k:p.Placement.Params.k
              ~b:p.Placement.Params.b))
  | Invalid_argument msg ->
      (* The spread families already prefix their own name. *)
      Error
        (if String.starts_with ~prefix:S.name msg then msg
         else Printf.sprintf "strategy %s: %s" S.name msg)

(* ------------------------------------------------------------------ *)
(* Fault-domain topologies (--topology and friends).

   The flags resolve to an optional (tree, level, j) context once the
   instance size is known: the tree must cover exactly n nodes, the
   level defaults to the first one above the nodes, and resolving also
   installs the ambient Topology.Strategies configuration so
   --strategy simple-spread/random-spread can plan. *)

let topology_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "topology" ] ~docv:"SPEC"
        ~doc:
          "Fault-domain topology, coarsest level first, e.g. \
           $(b,zone:2/rack:4/node:8) (see the $(b,topology) subcommand).  \
           The spec's counts must multiply out to -n.")

let topology_term =
  let parse = function
    | None -> `Ok None
    | Some spec -> (
        match Topology.Spec.parse spec with
        | Ok tree -> `Ok (Some tree)
        | Error msg -> `Error (false, "invalid --topology: " ^ msg))
  in
  Term.(ret (const parse $ topology_arg))

let domain_level_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "domain-level" ] ~docv:"NAME"
        ~doc:
          "Topology level the adversary and the spread constraint act on \
           (default: the first level above the nodes).")

let fail_domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "fail-domains" ] ~docv:"J"
        ~doc:"Domain-failure budget of the topology adversary (default 1).")

let spread_arg =
  Arg.(
    value
    & opt int 1
    & info [ "spread" ] ~docv:"T"
        ~doc:
          "Max replicas per domain for the spread strategies (default 1).")

let resolve_topology ~n topo level_name fail_domains spread =
  match topo with
  | None ->
      if level_name <> None then
        die "--domain-level needs --topology SPEC to name a level of";
      None
  | Some tree ->
      if Topology.Tree.n tree <> n then
        die
          (Printf.sprintf
             "--topology describes %d nodes but the instance has n = %d; make \
              the spec's counts multiply out to n"
             (Topology.Tree.n tree) n);
      let level =
        match level_name with
        | None -> min 1 (Topology.Tree.depth tree - 1)
        | Some name -> (
            match Topology.Tree.find_level tree name with
            | Some l -> l
            | None ->
                die
                  (Printf.sprintf
                     "--domain-level %s: no such level; this topology has: %s"
                     name
                     (String.concat ", "
                        (Array.to_list (Topology.Tree.level_names tree)))))
      in
      let domains = Topology.Tree.domain_count tree ~level in
      if fail_domains < 1 || fail_domains > domains then
        die
          (Printf.sprintf
             "--fail-domains %d: must be between 1 and the %d %s domain(s)"
             fail_domains domains
             (Topology.Tree.level_name tree level));
      if spread < 1 then
        die
          (Printf.sprintf "--spread %d: must allow at least 1 replica per domain"
             spread);
      Topology.Strategies.configure ~level ~cap:spread tree;
      Some (tree, level, fail_domains)

let domain_bound_json tree ~level (rep : Topology.Bound.report) =
  Telemetry.Json.Obj
    [
      ("level", Telemetry.Json.Str (Topology.Tree.level_name tree level));
      ("fail_domains", Telemetry.Json.Int rep.Topology.Bound.j);
      ("covered_nodes", Telemetry.Json.Int rep.Topology.Bound.covered_nodes);
      ("naive_nodes", Telemetry.Json.Int rep.Topology.Bound.naive_nodes);
      ( "guaranteed_available",
        Telemetry.Json.Int
          rep.Topology.Bound.si.Placement.Analysis.lb_clamped );
    ]

let domain_attack_json tree ~level layout (a : Topology.Adversary.attack) =
  let ints xs =
    Telemetry.Json.List (List.map (fun i -> Telemetry.Json.Int i) (Array.to_list xs))
  in
  Telemetry.Json.Obj
    [
      ("level", Telemetry.Json.Str (Topology.Tree.level_name tree level));
      ("failed_domains", ints a.Topology.Adversary.failed_domains);
      ("failed_nodes", ints a.Topology.Adversary.failed_nodes);
      ("failed_objects", Telemetry.Json.Int a.Topology.Adversary.failed_objects);
      ("available", Telemetry.Json.Int (Topology.Adversary.avail layout a));
      ("exact", Telemetry.Json.Bool a.Topology.Adversary.exact);
    ]

let print_domain_bound (p : Placement.Params.t) tree ~level ~j =
  let rep =
    Topology.Bound.load_report ~b:p.Placement.Params.b ~r:p.Placement.Params.r
      ~s:p.Placement.Params.s tree ~level ~j
  in
  Fmt.pr "  domain failures: worst %d %s(s) cover <= %d node(s); any \
          load-balanced placement keeps >= %d / %d@."
    j
    (Topology.Tree.level_name tree level)
    rep.Topology.Bound.covered_nodes
    rep.Topology.Bound.si.Placement.Analysis.lb_clamped p.Placement.Params.b;
  rep

let print_domain_attack tree ~level ~j layout atk =
  Fmt.pr "  domain adversary (worst %d %s(s)):@." j
    (Topology.Tree.level_name tree level);
  Fmt.pr "    failed domains: %a@."
    Fmt.(brackets (array ~sep:comma int))
    atk.Topology.Adversary.failed_domains;
  Fmt.pr "    failed nodes: %a@."
    Fmt.(brackets (array ~sep:comma int))
    atk.Topology.Adversary.failed_nodes;
  Fmt.pr "    available: %d / %d (adversary %s)@."
    (Topology.Adversary.avail layout atk)
    (Placement.Layout.b layout)
    (if atk.Topology.Adversary.exact then "exact" else "heuristic")

(* ------------------------------------------------------------------ *)
(* plan *)

let plan_term =
  let run (p : Placement.Params.t) topo level_name fail_domains spread
      (module S : Placement.Strategy.S) io =
    with_io io @@ fun () ->
    let json = io.json in
    let topo_ctx =
      resolve_topology ~n:p.Placement.Params.n topo level_name fail_domains
        spread
    in
    let inst = Placement.Instance.of_params p in
    let display = Placement.Strategies.display_name (module S) in
    let pr_avail = Placement.Instance.pr_avail inst in
    if json then begin
      let report = Placement.Strategy.report (module S) inst in
      print_envelope ~command:"plan"
        (Telemetry.Json.Obj
           ([
              ("report", Placement.Codec.report_json report);
              ("pr_avail", Telemetry.Json.Int pr_avail);
            ]
           @
           match topo_ctx with
           | None -> []
           | Some (tree, level, j) ->
               let rep =
                 Topology.Bound.load_report ~b:p.Placement.Params.b
                   ~r:p.Placement.Params.r ~s:p.Placement.Params.s tree ~level
                   ~j
               in
               [ ("topology", domain_bound_json tree ~level rep) ]))
    end
    else begin
      Fmt.pr "%s placement plan for %a@." display Placement.Params.pp p;
      List.iter (fun line -> Fmt.pr "  %s@." line) (S.explain inst);
      (match topo_ctx with
      | None -> ()
      | Some (tree, level, j) ->
          ignore (print_domain_bound p tree ~level ~j));
      match S.lower_bound inst with
      | None ->
          Fmt.pr "no worst-case guarantee for this strategy (probabilistic only)@.";
          Fmt.pr "Random placement, probable availability:          %d / %d@."
            pr_avail p.Placement.Params.b
      | Some lb ->
          Fmt.pr "guaranteed available objects (worst %d failures): %d / %d@."
            p.Placement.Params.k lb p.Placement.Params.b;
          Fmt.pr "Random placement, probable availability:          %d / %d@."
            pr_avail p.Placement.Params.b;
          if lb > pr_avail then
            Fmt.pr "=> %s saves %d of the %d objects Random probably loses.@."
              display (lb - pr_avail)
              (p.Placement.Params.b - pr_avail)
          else if lb < pr_avail then
            Fmt.pr "=> Random probably does better here (by %d objects).@."
              (pr_avail - lb)
          else Fmt.pr "=> Tie.@."
    end
  in
  Term.(
    const run $ params_term $ topology_term $ domain_level_arg
    $ fail_domains_arg $ spread_arg $ strategy_term ~default:"combo" $ io_term)

(* ------------------------------------------------------------------ *)
(* analyze *)

let analyze_term =
  let n_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let b_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "b"; "objects" ] ~docv:"B" ~doc:"Number of objects.")
  in
  let run n b r s k random topo level_name fail_domains spread
      (module S : Placement.Strategy.S) io =
    with_io io @@ fun () ->
    let json = io.json in
    (* --random supplies (n, b, r) and additionally materializes one
       seeded instance so the analytic prAvail can be read next to a
       realized greedy attack. *)
    let p, synth_seed =
      match random with
      | Some spec -> (
          match parse_random spec with
          | Error msg -> die msg
          | Ok (rn, rb, rr, rseed) -> (
              if n <> None || b <> None then
                die "--random carries its own N and B; drop -n/-b";
              match validate_params ~n:rn ~b:rb ~r:rr ~s ~k with
              | Error msg -> die ("invalid parameters: " ^ msg)
              | Ok p -> (p, Some rseed)))
      | None -> (
          match (n, b) with
          | Some n, Some b -> (
              match validate_params ~n ~b ~r ~s ~k with
              | Error msg -> die ("invalid parameters: " ^ msg)
              | Ok p -> (p, None))
          | _ -> die "analyze needs -n and -b (or --random N,B,R,SEED)")
    in
    let synth =
      Option.map
        (fun seed ->
          let rng = Combin.Rng.create seed in
          let layout = Placement.Random_placement.place ~rng p in
          let atk =
            Placement.Adversary.greedy layout ~s:p.Placement.Params.s
              ~k:p.Placement.Params.k
          in
          (seed, layout, atk))
        synth_seed
    in
    let topo_ctx =
      resolve_topology ~n:p.Placement.Params.n topo level_name fail_domains
        spread
    in
    let inst = Placement.Instance.of_params p in
    if json then begin
      let report = Placement.Strategy.report (module S) inst in
      let fields =
        [ ("report", Placement.Codec.report_json report) ]
        @ (if S.name = "random" then
             [ ("random", Placement.Codec.rnd_report_json
                   (Placement.Instance.rnd_report inst)) ]
           else [])
        @ [
            ( "exact_adversary_affordable",
              Telemetry.Json.Bool (Placement.Instance.exact_attack_affordable inst) );
            ("attack_cost", Telemetry.Json.Float (Placement.Instance.attack_cost inst));
          ]
        @ (match synth with
          | None -> []
          | Some (seed, layout, atk) ->
              [
                ( "synthetic",
                  Telemetry.Json.Obj
                    [
                      ("seed", Telemetry.Json.Int seed);
                      ( "max_load",
                        Telemetry.Json.Int (Placement.Layout.max_load layout) );
                      ( "greedy_failed_objects",
                        Telemetry.Json.Int
                          atk.Placement.Adversary.failed_objects );
                      ( "greedy_available",
                        Telemetry.Json.Int
                          (Placement.Adversary.avail layout
                             ~s:p.Placement.Params.s atk) );
                    ] );
              ])
        @
        match topo_ctx with
        | None -> []
        | Some (tree, level, j) ->
            let rep =
              Topology.Bound.load_report ~b:p.Placement.Params.b
                ~r:p.Placement.Params.r ~s:p.Placement.Params.s tree ~level ~j
            in
            [ ("topology", domain_bound_json tree ~level rep) ]
      in
      print_envelope ~command:"analyze" (Telemetry.Json.Obj fields)
    end
    else begin
      let print_synth () =
        match synth with
        | None -> ()
        | Some (seed, layout, atk) ->
            Fmt.pr "  synthetic instance (seed %d): max load %d@." seed
              (Placement.Layout.max_load layout);
            Fmt.pr "  greedy attack on it leaves: %d / %d@."
              (Placement.Adversary.avail layout ~s:p.Placement.Params.s atk)
              p.Placement.Params.b
      in
      if S.name = "random" then begin
      let rnd = Placement.Instance.rnd_report inst in
      Fmt.pr "Worst-case analysis of load-balanced Random placement@.";
      Fmt.pr "  parameters: %a@." Placement.Params.pp p;
      Fmt.pr "  per-object kill probability under a fixed worst K: %.3e@."
        rnd.Placement.Random_analysis.p_fail;
      Fmt.pr "  prAvail_rnd (Definition 6): %d / %d (%.4f)@."
        rnd.Placement.Random_analysis.pr_avail p.Placement.Params.b
        rnd.Placement.Random_analysis.fraction;
      (match rnd.Placement.Random_analysis.lemma4_upper with
      | Some u -> Fmt.pr "  Lemma 4 upper bound (s = 1): %.1f@." u
      | None -> ());
      print_synth ();
      match topo_ctx with
      | None -> ()
      | Some (tree, level, j) -> ignore (print_domain_bound p tree ~level ~j)
    end
    else begin
      Fmt.pr "Worst-case analysis of the %s strategy@."
        (Placement.Strategies.display_name (module S));
      Fmt.pr "  parameters: %a@." Placement.Params.pp p;
      List.iter (fun line -> Fmt.pr "  %s@." line) (S.explain inst);
      (match S.lower_bound inst with
      | Some lb ->
          Fmt.pr "  worst-case guarantee (Lemmas 2-3): %d / %d@." lb
            p.Placement.Params.b
      | None -> Fmt.pr "  no worst-case guarantee@.");
      Fmt.pr "  upper bound for any placement: %d / %d@."
        (Placement.Analysis.ub_avail_any ~b:p.Placement.Params.b
           ~r:p.Placement.Params.r ~s:p.Placement.Params.s ~n:p.Placement.Params.n
           ~k:p.Placement.Params.k)
        p.Placement.Params.b;
      Fmt.pr "  exact adversary affordable: %b (estimated work %.3g)@."
        (Placement.Instance.exact_attack_affordable inst)
        (Placement.Instance.attack_cost inst);
      print_synth ();
      match topo_ctx with
      | None -> ()
      | Some (tree, level, j) -> ignore (print_domain_bound p tree ~level ~j)
    end
    end
  in
  Term.(
    const run $ n_opt $ b_opt $ r_arg $ s_arg $ k_arg $ random_arg
    $ topology_term $ domain_level_arg $ fail_domains_arg $ spread_arg
    $ strategy_term ~default:"random" $ io_term)

(* ------------------------------------------------------------------ *)
(* designs *)

let designs_term =
  let x_arg =
    Arg.(value & opt int 1 & info [ "x" ] ~docv:"X" ~doc:"Overlap bound (strength t = x+1).")
  in
  let max_v_arg =
    Arg.(value & opt int 100 & info [ "max-v" ] ~docv:"V" ~doc:"Largest design size to list.")
  in
  let mu_arg =
    Arg.(value & opt int 1 & info [ "max-mu" ] ~docv:"MU" ~doc:"Largest design multiplicity.")
  in
  let run x r max_v max_mu =
    setup_logs ();
    let entries =
      Designs.Registry.entries ~max_mu ~strength:(x + 1) ~block_size:r ~max_v ()
    in
    Fmt.pr "Catalogue of %d-(v, %d, mu) designs with v <= %d, mu <= %d@."
      (x + 1) r max_v max_mu;
    List.iter
      (fun (e : Designs.Registry.entry) ->
        Fmt.pr "  v=%-4d mu=%-2d blocks=%-8d %-30s %s@." e.v e.mu e.blocks
          e.name
          (if Designs.Registry.is_materialized e then "[materialized]"
           else "[literature]"))
      entries
  in
  Term.(const run $ x_arg $ r_arg $ max_v_arg $ mu_arg)

(* ------------------------------------------------------------------ *)
(* gap *)

let gap_term =
  let x_arg =
    Arg.(value & opt int 1 & info [ "x" ] ~docv:"X" ~doc:"Overlap bound (strength t = x+1).")
  in
  let mu_arg =
    Arg.(value & opt int 1 & info [ "max-mu" ] ~docv:"MU" ~doc:"Largest common multiplicity.")
  in
  let run n x r max_mu =
    setup_logs ();
    match
      Designs.Chunking.best_plan ~max_mu ~strength:(x + 1) ~block_size:r ~n ()
    with
    | None -> Fmt.pr "No chunk plan found for n=%d, x=%d, r=%d.@." n x r
    | Some plan ->
        Fmt.pr "Best chunk plan for n=%d, x=%d, r=%d (mu <= %d):@." n x r max_mu;
        List.iter
          (fun (e : Designs.Registry.entry) ->
            Fmt.pr "  chunk: %s (v=%d, mu=%d, %d blocks)@." e.name e.v e.mu
              e.blocks)
          plan.Designs.Chunking.chunks;
        Fmt.pr "  lambda=%d capacity=%d ideal=%d gap=%.4f@."
          plan.Designs.Chunking.lambda plan.Designs.Chunking.capacity
          (Designs.Chunking.ideal_capacity ~strength:(x + 1) ~block_size:r
             ~lambda:plan.Designs.Chunking.lambda n)
          (Designs.Chunking.capacity_gap ~strength:(x + 1) ~block_size:r ~n plan)
  in
  Term.(const run $ n_arg $ x_arg $ r_arg $ mu_arg)

(* ------------------------------------------------------------------ *)
(* attack *)

let print_attack ~source layout ~s attack =
  Fmt.pr "Worst-case attack on %s (b=%d, n=%d, r=%d)@." source
    (Placement.Layout.b layout)
    layout.Placement.Layout.n layout.Placement.Layout.r;
  Fmt.pr "  failed nodes: %a@."
    Fmt.(brackets (array ~sep:comma int))
    attack.Placement.Adversary.failed_nodes;
  Fmt.pr "  available objects: %d / %d (adversary %s)@."
    (Placement.Adversary.avail layout ~s attack)
    (Placement.Layout.b layout)
    (if attack.Placement.Adversary.exact then "exact" else "heuristic")

let attack_term =
  let file_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "layout" ] ~docv:"FILE" ~doc:"Layout file written by simulate --out.")
  in
  let strategy_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "strategy" ] ~docv:"STRAT"
          ~doc:
            "Attack a freshly planned strategy layout instead of a file \
             (requires -n and -b).")
  in
  let n_opt = Arg.(value & opt (some int) None & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes (with --strategy).") in
  let b_opt = Arg.(value & opt (some int) None & info [ "b"; "objects" ] ~docv:"B" ~doc:"Number of objects (with --strategy).") in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (with --strategy).")
  in
  let r_only =
    Arg.(value & opt int 3 & info [ "r"; "replicas" ] ~docv:"R" ~doc:"Replicas per object (with --strategy).")
  in
  let s_only =
    Arg.(value & opt int 2 & info [ "s"; "fatal" ] ~docv:"S" ~doc:"Fatality threshold.")
  in
  let k_only =
    Arg.(value & opt int 2 & info [ "k"; "failures" ] ~docv:"K" ~doc:"Nodes to fail.")
  in
  let run file strategy random n b r seed s k topo level_name fail_domains
      spread jobs io =
    with_io io @@ fun () ->
    let json = io.json in
    (* The spread strategies need the ambient configuration installed
       before they plan, so resolve as soon as n is known. *)
    let resolve n =
      resolve_topology ~n topo level_name fail_domains spread
    in
    let source, layout, topo_ctx =
      match (file, strategy, random) with
      | Some _, Some _, _ | Some _, _, Some _ | _, Some _, Some _ ->
          die "pass only one of --layout, --strategy and --random"
      | None, None, None ->
          die "one of --layout FILE, --strategy NAME or --random N,B,R,SEED is required"
      | _, _, Some spec -> (
          match parse_random spec with
          | Error msg -> die msg
          | Ok (rn, rb, rr, rseed) -> (
              if n <> None || b <> None then
                die "--random carries its own N and B; drop -n/-b";
              match validate_params ~n:rn ~b:rb ~r:rr ~s ~k with
              | Error msg -> die ("invalid parameters: " ^ msg)
              | Ok p ->
                  let ctx = resolve p.Placement.Params.n in
                  let rng = Combin.Rng.create rseed in
                  let layout = Placement.Random_placement.place ~rng p in
                  ( Printf.sprintf "a synthetic random instance (seed %d)" rseed,
                    layout, ctx )))
      | Some file, None, None -> (
          match Placement.Codec.load file with
          | Error msg -> die (Printf.sprintf "cannot load %s: %s" file msg)
          | Ok layout -> (file, layout, resolve layout.Placement.Layout.n))
      | None, Some name, None -> (
          let (module S) =
            match Placement.Strategies.find name with
            | Some s -> s
            | None ->
                die
                  (Printf.sprintf "unknown strategy %S; available strategies: %s"
                     name
                     (String.concat ", " (Placement.Strategies.names ())))
          in
          match (n, b) with
          | None, _ | _, None -> die "--strategy needs -n and -b to size the instance"
          | Some n, Some b -> (
              match validate_params ~n ~b ~r ~s ~k with
              | Error msg -> die ("invalid parameters: " ^ msg)
              | Ok p -> (
                  let ctx = resolve p.Placement.Params.n in
                  let inst = Placement.Instance.of_params p in
                  let rng = Combin.Rng.create seed in
                  match plan_layout (module S) ~rng inst with
                  | Error msg -> die msg
                  | Ok layout ->
                      (Printf.sprintf "a %s placement"
                         (Placement.Strategies.display_name (module S)),
                       layout, ctx))))
    in
    let attack, domain_attack =
      with_pool jobs (fun pool ->
          let atk = Placement.Adversary.best ?pool layout ~s ~k in
          let datk =
            Option.map
              (fun (tree, level, j) ->
                Topology.Adversary.attack ?pool layout ~s tree ~level ~j)
              topo_ctx
          in
          (atk, datk))
    in
    if json then
      print_envelope ~command:"attack"
        (Telemetry.Json.Obj
           ([
              ("source", Telemetry.Json.Str source);
              ("attack", Placement.Codec.attack_json ~s layout attack);
            ]
           @
           match (topo_ctx, domain_attack) with
           | Some (tree, level, _), Some datk ->
               [ ("topology", domain_attack_json tree ~level layout datk) ]
           | _ -> []))
    else begin
      print_attack ~source layout ~s attack;
      match (topo_ctx, domain_attack) with
      | Some (tree, level, j), Some datk ->
          print_domain_attack tree ~level ~j layout datk
      | _ -> ()
    end
  in
  Term.(
    const run $ file_arg $ strategy_opt_arg $ random_arg $ n_opt $ b_opt
    $ r_only $ seed_arg $ s_only $ k_only $ topology_term $ domain_level_arg
    $ fail_domains_arg $ spread_arg $ jobs_term $ io_term)

(* ------------------------------------------------------------------ *)
(* simulate *)

let simulate_term =
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also export the layout to a file.")
  in
  let run (p : Placement.Params.t) topo level_name fail_domains spread
      (module S : Placement.Strategy.S) seed out jobs io =
    with_io io @@ fun () ->
    let json = io.json in
    let topo_ctx =
      resolve_topology ~n:p.Placement.Params.n topo level_name fail_domains
        spread
    in
    let inst = Placement.Instance.of_params p in
    let rng = Combin.Rng.create seed in
    let layout =
      match plan_layout (module S) ~rng inst with
      | Ok layout -> layout
      | Error msg -> die msg
    in
    let attack, domain_attack =
      with_pool jobs (fun pool ->
          let atk =
            Placement.Adversary.best ?pool ~rng layout ~s:p.Placement.Params.s
              ~k:p.Placement.Params.k
          in
          let datk =
            Option.map
              (fun (tree, level, j) ->
                Topology.Adversary.attack ?pool layout ~s:p.Placement.Params.s
                  tree ~level ~j)
              topo_ctx
          in
          (atk, datk))
    in
    if json then
      print_envelope ~command:"simulate"
        (Telemetry.Json.Obj
           ([
              ("strategy", Telemetry.Json.Str S.name);
              ("params", Placement.Codec.params_json p);
              ( "attack",
                Placement.Codec.attack_json ~s:p.Placement.Params.s layout
                  attack );
            ]
           @
           match (topo_ctx, domain_attack) with
           | Some (tree, level, _), Some datk ->
               [ ("topology", domain_attack_json tree ~level layout datk) ]
           | _ -> []))
    else begin
      Fmt.pr "Simulated worst-case attack on a %s placement@."
        (Placement.Strategies.display_name (module S));
      Fmt.pr "  failed nodes: %a@."
        Fmt.(brackets (array ~sep:comma int))
        attack.Placement.Adversary.failed_nodes;
      Fmt.pr "  failed objects: %d / %d  (adversary %s)@."
        attack.Placement.Adversary.failed_objects p.Placement.Params.b
        (if attack.Placement.Adversary.exact then "exact" else "heuristic");
      Fmt.pr "  available: %d@."
        (Placement.Adversary.avail layout ~s:p.Placement.Params.s attack);
      match (topo_ctx, domain_attack) with
      | Some (tree, level, j), Some datk ->
          print_domain_attack tree ~level ~j layout datk
      | _ -> ()
    end;
    match out with
    | None -> ()
    | Some path ->
        Placement.Codec.save path layout;
        if not json then Fmt.pr "  layout written to %s@." path
  in
  Term.(
    const run $ params_term $ topology_term $ domain_level_arg
    $ fail_domains_arg $ spread_arg $ strategy_term ~default:"combo"
    $ seed_arg $ out_arg $ jobs_term $ io_term)

(* ------------------------------------------------------------------ *)
(* strategies *)

let strategies_term =
  let run () =
    setup_logs ();
    Fmt.pr "Registered placement strategies:@.";
    List.iter
      (fun (module S : Placement.Strategy.S) ->
        Fmt.pr "  %-10s %-40s %s@." S.name
          (Printf.sprintf "[%s]"
             (String.concat ","
                (List.map Placement.Strategy.capability_name S.capabilities)))
          S.describe)
      (Placement.Strategies.all ())
  in
  Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* recommend *)

let recommend_term =
  let target_arg =
    Arg.(
      value
      & opt float 99.9
      & info [ "target" ] ~docv:"PCT"
          ~doc:"Required guaranteed availability, as a percentage of b.")
  in
  let run n b k target =
    setup_logs ();
    Fmt.pr
      "Cheapest (r, s) guaranteeing >= %.2f%% of %d objects against the worst %d of %d nodes@."
      target b k n;
    let found = ref false in
    List.iter
      (fun r ->
        if not !found && r <= n then
          List.iter
            (fun s ->
              if (not !found) && s <= r && k >= s then begin
                match Placement.Params.validate { Placement.Params.b; r; s; n; k } with
                | Error _ -> ()
                | Ok p ->
                    let cfg =
                      Placement.Instance.combo_config (Placement.Instance.of_params p)
                    in
                    let pct =
                      100.0 *. float_of_int cfg.Placement.Combo.lb /. float_of_int b
                    in
                    Fmt.pr "  r=%d s=%d: guarantee %d (%.3f%%)%s@." r s
                      cfg.Placement.Combo.lb pct
                      (if pct >= target then "  <- RECOMMENDED" else "");
                    if pct >= target then found := true
              end)
            (List.sort_uniq compare [ r; r - (r / 2); 2; 1 ]
            |> List.rev) (* read-any first, then majority/2/write-all *))
      [ 2; 3; 4; 5 ];
    if not !found then
      Fmt.pr "  no configuration with r <= 5 reaches the target; lower the target or k.@."
  in
  Term.(const run $ n_arg $ b_arg $ k_arg $ target_arg)

(* ------------------------------------------------------------------ *)
(* topology *)

let topology_cmd_term =
  let spec_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC"
          ~doc:
            "Topology spec, coarsest level first: NAME:COUNT/NAME:COUNT/... \
             e.g. $(b,zone:2/rack:4/node:8).")
  in
  let run spec json =
    setup_logs ();
    match Topology.Spec.parse spec with
    | Error msg -> die ("invalid topology spec: " ^ msg)
    | Ok tree ->
        if json then print_envelope ~command:"topology" (Topology.Spec.json tree)
        else begin
          Fmt.pr "%s@." (Topology.Spec.summary tree);
          for level = Topology.Tree.depth tree - 1 downto 0 do
            let sizes = Topology.Tree.sizes tree ~level in
            let lo = Array.fold_left min sizes.(0) sizes in
            let hi = Array.fold_left max sizes.(0) sizes in
            Fmt.pr "  %-8s %6d domain(s), %s@."
              (Topology.Tree.level_name tree level)
              (Topology.Tree.domain_count tree ~level)
              (if lo = hi then Printf.sprintf "%d node(s) each" lo
               else Printf.sprintf "%d-%d node(s)" lo hi)
          done
        end
  in
  Term.(const run $ spec_pos $ json_flag)

(* ------------------------------------------------------------------ *)
(* churn *)

let churn_seed_arg =
  Arg.(
    value
    & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"PRNG seed of the synthetic event stream.")

let join_weight_arg =
  Arg.(
    value
    & opt int 0
    & info [ "join-weight" ] ~docv:"W"
        ~doc:
          "Relative weight of node-join events in the synthetic stream \
           (default 0: no membership churn, byte-identical to historical \
           streams).")

let leave_weight_arg =
  Arg.(
    value
    & opt int 0
    & info [ "leave-weight" ] ~docv:"W"
        ~doc:
          "Relative weight of permanent node-leave events in the synthetic \
           stream (default 0).")

(* Shared by churn (batch) and serve (online): build the engine after
   the usual parameter/topology validation. *)
let make_engine ~n ~r ~s ~k topo =
  (match validate_params ~n ~b:1 ~r ~s ~k with
  | Ok _ -> ()
  | Error msg -> die ("invalid parameters: " ^ msg));
  let topology =
    match topo with
    | None -> None
    | Some tree ->
        if Topology.Tree.n tree <> n then
          die
            (Printf.sprintf
               "--topology describes %d nodes but the instance has n = %d; \
                make the spec's counts multiply out to n"
               (Topology.Tree.n tree) n);
        Some tree
  in
  match Dsim.Churn.create ?topology ~n ~r ~s ~k () with
  | eng -> eng
  | exception Invalid_argument msg -> die msg

let churn_term =
  let seed_arg = churn_seed_arg in
  let count_arg =
    Arg.(
      value
      & opt int 1000
      & info [ "count" ] ~docv:"M"
          ~doc:"Number of synthetic events to generate (ignored with \
                $(b,--events)).")
  in
  let measure_arg =
    Arg.(
      value
      & opt int 100
      & info [ "measure-every" ] ~docv:"E"
          ~doc:
            "Emit a measurement row every $(docv) synthetic events (0 \
             disables the pulse; ignored with $(b,--events), where \
             $(b,measure) lines drive the rows).")
  in
  let events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Replay $(docv) instead of a seeded stream: one event per line — \
             $(b,fail N), $(b,recover N), $(b,fail-domain LEVEL D), \
             $(b,join N), $(b,leave N), $(b,create), $(b,delete ID), \
             $(b,measure LABEL) — with blank lines and #-comments ignored.")
  in
  let responses_arg =
    Arg.(
      value
      & flag
      & info [ "responses" ]
          ~doc:
            "Answer the $(b,--events) file as a serve request script: one \
             single-line placement/v1 envelope per line (queries and stats \
             allowed), byte-identical to piping the same script into \
             $(b,placement-tool serve).")
  in
  let run n r s k topo seed count measure_every events_file join_weight
      leave_weight responses jobs io =
    with_io io @@ fun () ->
    let json = io.json in
    if count < 0 then
      die
        (Printf.sprintf "--count %d: the event count must be non-negative"
           count);
    if measure_every < 0 then
      die
        (Printf.sprintf
           "--measure-every %d: the measurement period must be non-negative"
           measure_every);
    if join_weight < 0 || leave_weight < 0 then
      die "--join-weight/--leave-weight must be non-negative";
    let eng = make_engine ~n ~r ~s ~k topo in
    (* The engine is sequential by construction (DESIGN.md §12): -j is
       accepted for interface symmetry and the output is byte-identical
       at any value — the cram suite pins -j1 ≡ -j4. *)
    with_pool jobs @@ fun _pool ->
    if responses then begin
      (* Batch replay of the serve protocol: same parser, same executor,
         same wire format — diffable byte-for-byte against the daemon. *)
      let path =
        match events_file with
        | Some path -> path
        | None -> die "--responses needs --events FILE (the request script)"
      in
      let fd =
        match Unix.openfile path [ Unix.O_RDONLY ] 0 with
        | fd -> fd
        | exception Unix.Unix_error (err, _, _) ->
            die
              (Printf.sprintf "cannot read %s: %s" path
                 (Unix.error_message err))
      in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let session = Dsim.Api.make eng in
          ignore
            (Dsim.Serve.run session ~input:fd ~output:Unix.stdout))
    end
    else begin
    let events, source_json, source_human =
      match events_file with
      | Some path ->
          let content =
            match open_in_bin path with
            | exception Sys_error msg -> die ("cannot read " ^ msg)
            | ic ->
                Fun.protect
                  ~finally:(fun () -> close_in ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
          in
          let events =
            match Dsim.Event.parse_string content with
            | Ok evs -> evs
            | Error err -> die (Dsim.Event.format_error ~file:path err)
          in
          ( events,
            Telemetry.Json.Obj
              [
                ("kind", Telemetry.Json.Str "file");
                ("path", Telemetry.Json.Str path);
                ("events", Telemetry.Json.Int (List.length events));
              ],
            Printf.sprintf "event file %s (%d events)" path
              (List.length events) )
      | None ->
          let events =
            Dsim.Event.seeded
              ~rng:(Combin.Rng.create seed)
              ~n ~join_weight ~leave_weight ~count ~measure_every ()
          in
          ( events,
            Telemetry.Json.Obj
              ([
                 ("kind", Telemetry.Json.Str "seeded");
                 ("seed", Telemetry.Json.Int seed);
                 ("count", Telemetry.Json.Int count);
                 ("measure_every", Telemetry.Json.Int measure_every);
               ]
              @
              if join_weight > 0 || leave_weight > 0 then
                [
                  ("join_weight", Telemetry.Json.Int join_weight);
                  ("leave_weight", Telemetry.Json.Int leave_weight);
                ]
              else []),
            Printf.sprintf
              "seeded stream (seed %d, %d events, measure every %d)%s" seed
              count measure_every
              (if join_weight > 0 || leave_weight > 0 then
                 Printf.sprintf ", join/leave weights %d/%d" join_weight
                   leave_weight
               else "") )
    in
    (* One entry point into the engine: batch replay drives the same
       Api session the serve daemon does, so the counters in the
       summary are the session's own. *)
    let session = Dsim.Api.make eng in
    let rows = ref [] in
    let min_worst = ref max_int in
    List.iter
      (fun ev ->
        let step =
          match Dsim.Api.exec session (Dsim.Api.Apply ev) with
          | Dsim.Api.Applied step -> step
          | Dsim.Api.Rejected { message; _ } -> die message
          | _ -> assert false
        in
        (* Per-event incremental worst-case re-score: no rebuild, and
           the minimum over each measurement window surfaces transient
           dips that measurement-time-only scoring would miss. *)
        let rs = Dsim.Churn.rescore eng in
        if rs.Dsim.Churn.worst_available < !min_worst then
          min_worst := rs.Dsim.Churn.worst_available;
        match ev with
        | Dsim.Event.Measure label ->
            rows :=
              ( step.Dsim.Churn.seq,
                label,
                step.Dsim.Churn.live,
                step.Dsim.Churn.available,
                step.Dsim.Churn.failed_nodes,
                step.Dsim.Churn.lower_bound,
                Dsim.Churn.moved_replicas eng,
                rs.Dsim.Churn.worst_available,
                !min_worst )
              :: !rows;
            min_worst := max_int
        | _ -> ())
      events;
    let rows = List.rev !rows in
    let final = Dsim.Churn.rescore eng in
    let st = Dsim.Api.stats session in
    let creates = ref st.Dsim.Api.creates
    and deletes = ref st.Dsim.Api.deletes
    and node_fails = ref st.Dsim.Api.node_fails
    and node_recovers = ref st.Dsim.Api.node_recovers
    and domain_fails = ref st.Dsim.Api.domain_fails
    and joins = ref st.Dsim.Api.joins
    and leaves = ref st.Dsim.Api.leaves
    and measures = ref st.Dsim.Api.measures in
    if json then
      print_envelope ~command:"churn"
        (Telemetry.Json.Obj
           [
             ( "params",
               Telemetry.Json.Obj
                 [
                   ("n", Telemetry.Json.Int n);
                   ("r", Telemetry.Json.Int r);
                   ("s", Telemetry.Json.Int s);
                   ("k", Telemetry.Json.Int k);
                 ] );
             ("source", source_json);
             ( "rows",
               Telemetry.Json.List
                 (List.map
                    (fun ( seq,
                           label,
                           live,
                           avail,
                           failed,
                           lb,
                           moved,
                           worst,
                           min_worst ) ->
                      Telemetry.Json.Obj
                        [
                          ("seq", Telemetry.Json.Int seq);
                          ("label", Telemetry.Json.Str label);
                          ("live", Telemetry.Json.Int live);
                          ("available", Telemetry.Json.Int avail);
                          ("failed_nodes", Telemetry.Json.Int failed);
                          ("lower_bound", Telemetry.Json.Int lb);
                          ("moved_replicas", Telemetry.Json.Int moved);
                          ("worst_available", Telemetry.Json.Int worst);
                          ( "min_worst_available",
                            Telemetry.Json.Int min_worst );
                        ])
                    rows) );
             ( "summary",
               Telemetry.Json.Obj
                 ((* Echo the generator seed so a reported run is
                     reproducible from its summary alone (file replays
                     carry the path in "source" instead). *)
                  (match events_file with
                  | None -> [ ("seed", Telemetry.Json.Int seed) ]
                  | Some _ -> [])
                 @ [
                   ("events", Telemetry.Json.Int (Dsim.Churn.events eng));
                   ("creates", Telemetry.Json.Int !creates);
                   ("deletes", Telemetry.Json.Int !deletes);
                   ("node_fails", Telemetry.Json.Int !node_fails);
                   ("node_recovers", Telemetry.Json.Int !node_recovers);
                   ("domain_fails", Telemetry.Json.Int !domain_fails);
                   ("joins", Telemetry.Json.Int !joins);
                   ("leaves", Telemetry.Json.Int !leaves);
                   ("measures", Telemetry.Json.Int !measures);
                   ( "moved_replicas",
                     Telemetry.Json.Int (Dsim.Churn.moved_replicas eng) );
                   ("live", Telemetry.Json.Int (Dsim.Churn.live eng));
                   ("available", Telemetry.Json.Int (Dsim.Churn.available eng));
                   ( "worst_available",
                     Telemetry.Json.Int final.Dsim.Churn.worst_available );
                   ( "lower_bound",
                     Telemetry.Json.Int (Dsim.Churn.lower_bound eng) );
                 ]) );
           ])
    else begin
      Fmt.pr "Continuous churn replay on n=%d nodes (r=%d, s=%d, k=%d)@." n r
        s k;
      Fmt.pr "  source: %s@." source_human;
      List.iter
        (fun (seq, label, live, avail, failed, lb, moved, worst, min_worst) ->
          Fmt.pr
            "  [%s] seq=%d live=%d avail=%d worst=%d min_worst=%d lb=%d \
             failed_nodes=%d moved=%d@."
            label seq live avail worst min_worst lb failed moved)
        rows;
      Fmt.pr
        "  events: %d (%d creates, %d deletes, %d fails, %d recovers, %d \
         domain, %d joins, %d leaves, %d measures)@."
        (Dsim.Churn.events eng)
        !creates !deletes !node_fails !node_recovers !domain_fails !joins
        !leaves !measures;
      Fmt.pr
        "  moved replicas: %d (r=%d per create, at most r*load per leave, \
         none otherwise)@."
        (Dsim.Churn.moved_replicas eng)
        r;
      Fmt.pr
        "  final: live=%d available=%d worst-case available=%d lower \
         bound=%d@."
        (Dsim.Churn.live eng)
        (Dsim.Churn.available eng)
        final.Dsim.Churn.worst_available
        (Dsim.Churn.lower_bound eng)
    end
    end
  in
  Term.(
    const run $ n_arg $ r_arg $ s_arg $ k_arg $ topology_term $ seed_arg
    $ count_arg $ measure_arg $ events_arg $ join_weight_arg
    $ leave_weight_arg $ responses_arg $ jobs_term $ io_term)

let serve_term =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) and serve \
             connections one at a time against a single long-lived engine \
             (default: serve stdin/stdout once).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt float 0.
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "End the session gracefully when nothing arrives for $(docv) \
             seconds (0 disables the idle timeout).")
  in
  let max_events_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-events" ] ~docv:"M"
          ~doc:
            "Guard rail: refuse further events after $(docv) have been \
             applied and drain the session.")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "snapshot-every" ] ~docv:"E"
          ~doc:
            "Emit a snapshot envelope (running stats) after every $(docv) \
             applied events.")
  in
  let run n r s k topo socket timeout max_events snapshot_every jobs metrics
      trace =
    setup_logs ();
    with_telemetry ~metrics ~trace @@ fun () ->
    (match max_events with
    | Some m when m < 0 ->
        die (Printf.sprintf "--max-events %d: the cap must be non-negative" m)
    | _ -> ());
    (match snapshot_every with
    | Some e when e <= 0 ->
        die
          (Printf.sprintf "--snapshot-every %d: the period must be positive" e)
    | _ -> ());
    if timeout < 0. then
      die
        (Printf.sprintf "--timeout %g: the idle timeout must be non-negative"
           timeout);
    let eng = make_engine ~n ~r ~s ~k topo in
    (* One session for the daemon's lifetime: a reconnecting client sees
       the same engine and the same running stats. *)
    let session = Dsim.Api.make eng in
    with_pool jobs @@ fun _pool ->
    Dsim.Serve.install_signals ();
    let serve_fds ~input ~output =
      Dsim.Serve.run ?max_events ?snapshot_every ~timeout session ~input
        ~output
    in
    match socket with
    | None ->
        let outcome = serve_fds ~input:Unix.stdin ~output:Unix.stdout in
        Logs.info (fun m ->
            m "serve session over stdin ended (%s): %d requests, %d responses"
              (Dsim.Serve.reason_label outcome.Dsim.Serve.reason)
              outcome.Dsim.Serve.requests outcome.Dsim.Serve.responses)
    | Some path ->
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (if Sys.file_exists path then
           try Unix.unlink path with Unix.Unix_error _ -> ());
        (try
           Unix.bind sock (Unix.ADDR_UNIX path);
           Unix.listen sock 8
         with Unix.Unix_error (err, _, _) ->
           die
             (Printf.sprintf "cannot listen on %s: %s" path
                (Unix.error_message err)));
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close sock with Unix.Unix_error _ -> ());
            try Unix.unlink path with Unix.Unix_error _ -> ())
          (fun () ->
            Logs.app (fun m -> m "serving on %s" path);
            let running = ref true in
            while !running && not (Dsim.Serve.stop_requested ()) do
              (* Poll accept so a delivered signal is noticed within a
                 second even with no client connecting. *)
              match Unix.select [ sock ] [] [] 1.0 with
              | [], _, _ -> ()
              | _ -> (
                  match Unix.accept sock with
                  | client, _ ->
                      let outcome =
                        Fun.protect
                          ~finally:(fun () ->
                            try Unix.close client
                            with Unix.Unix_error _ -> ())
                          (fun () ->
                            serve_fds ~input:client ~output:client)
                      in
                      Logs.info (fun m ->
                          m "connection ended (%s): %d requests"
                            (Dsim.Serve.reason_label
                               outcome.Dsim.Serve.reason)
                            outcome.Dsim.Serve.requests);
                      (match outcome.Dsim.Serve.reason with
                      | Dsim.Serve.Signal | Dsim.Serve.Max_events ->
                          running := false
                      | Dsim.Serve.Eof | Dsim.Serve.Timeout -> ())
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            done)
  in
  Term.(
    const run $ n_arg $ r_arg $ s_arg $ k_arg $ topology_term $ socket_arg
    $ timeout_arg $ max_events_arg $ snapshot_arg $ jobs_term $ metrics_arg
    $ trace_arg)

let dst_term =
  let n_arg =
    Arg.(
      value
      & opt int 24
      & info [ "n" ] ~docv:"N" ~doc:"Number of nodes in each simulation.")
  in
  let seed_arg =
    Arg.(
      value
      & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Base seed: run $(i,i) of a sweep uses SEED+$(i,i), driving \
             both the scenario generator and the fault-injection plan.")
  in
  let runs_arg =
    Arg.(
      value
      & opt int 1
      & info [ "runs" ] ~docv:"RUNS"
          ~doc:"Seeds per (profile, strategy) combination.")
  in
  let steps_arg =
    Arg.(
      value
      & opt int 300
      & info [ "steps" ] ~docv:"STEPS"
          ~doc:"Weighted event draws per simulation.")
  in
  let measure_arg =
    Arg.(
      value
      & opt int 50
      & info [ "measure-every" ] ~docv:"E"
          ~doc:
            "Measurement pulse period: pulse-cadence invariants (replay, \
             in-service, per-strategy) run on these events (0 disables \
             them).")
  in
  let profile_arg =
    Arg.(
      value
      & opt string "steady"
      & info [ "profile" ] ~docv:"NAMES"
          ~doc:
            (Printf.sprintf
               "Comma-separated scenario profiles to sweep: %s."
               (String.concat ", " Dst.Profile.names)))
  in
  let strategy_arg =
    Arg.(
      value
      & opt string "combo"
      & info [ "strategy" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated strategies whose auto-discovered \
             strategy/NAME invariants run at each pulse ($(b,none) checks \
             only the engine invariants).")
  in
  let inject_arg =
    Arg.(
      value
      & opt int 0
      & info [ "inject" ] ~docv:"RATE"
          ~doc:
            "Arm fault injection: every registered dst/* point fires with \
             probability 1/RATE, deterministically from the run seed (0 \
             disarms).")
  in
  let break_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "break" ] ~docv:"NAMES"
          ~doc:
            "Enable comma-separated canary (deliberately broken) \
             invariants — shrinker drills.")
  in
  let shrink_flag =
    Arg.(
      value
      & flag
      & info [ "shrink" ]
          ~doc:
            "On the first violation, ddmin-minimize its history and write \
             a replayable repro file ($(b,--repro)).")
  in
  let repro_arg =
    Arg.(
      value
      & opt string "dst_repro.events"
      & info [ "repro" ] ~docv:"FILE"
          ~doc:"Where $(b,--shrink) writes the minimized repro.")
  in
  let events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Replay $(docv) (one event per line, #-comments ignored — the \
             format the shrinker writes) instead of generating a history; \
             uses the base seed and the first profile/strategy only.")
  in
  let run n r s k seed runs steps measure_every profiles_s strategies_s
      inject break_s shrink repro_path events_file jobs io =
    with_io io @@ fun () ->
    let json = io.json in
    (match validate_params ~n ~b:1 ~r ~s ~k with
    | Ok _ -> ()
    | Error msg -> die ("invalid parameters: " ^ msg));
    if runs < 1 then
      die (Printf.sprintf "--runs %d: need at least one run" runs);
    if steps < 0 then
      die (Printf.sprintf "--steps %d: the step count must be non-negative"
             steps);
    if measure_every < 0 then
      die
        (Printf.sprintf
           "--measure-every %d: the measurement period must be non-negative"
           measure_every);
    if inject < 0 then
      die (Printf.sprintf "--inject %d: the rate must be non-negative" inject);
    let split_names what s =
      match
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun x -> x <> "")
      with
      | [] -> die (Printf.sprintf "%s needs at least one name" what)
      | names -> names
    in
    let profiles =
      List.map
        (fun nm ->
          match Dst.Profile.find nm with
          | Some p -> p
          | None ->
              die
                (Printf.sprintf "unknown profile %S; available: %s" nm
                   (String.concat ", " Dst.Profile.names)))
        (split_names "--profile" profiles_s)
    in
    let strategies =
      List.map
        (fun nm ->
          if nm = "none" then None
          else
            match Placement.Strategies.find nm with
            | Some m -> Some m
            | None ->
                die
                  (Printf.sprintf
                     "unknown strategy %S; available: %s, none" nm
                     (String.concat ", " (Placement.Strategies.names ()))))
        (split_names "--strategy" strategies_s)
    in
    let breaks =
      match break_s with
      | None -> []
      | Some s ->
          let names = split_names "--break" s in
          List.iter
            (fun nm ->
              if Dst.Invariant.find_canary nm = None then
                die
                  (Printf.sprintf
                     "unknown canary invariant %S; available: %s" nm
                     (String.concat ", " Dst.Invariant.canary_names)))
            names;
          names
    in
    let mk_config cfg_seed profile strategy =
      {
        Dst.Harness.n;
        r;
        s;
        k;
        seed = cfg_seed;
        steps;
        measure_every;
        profile;
        strategy;
        inject_rate = inject;
        break_invariants = breaks;
        extra_invariants = [];
      }
    in
    let replay_history =
      match events_file with
      | None -> None
      | Some path -> (
          let content =
            match open_in_bin path with
            | exception Sys_error msg -> die ("cannot read " ^ msg)
            | ic ->
                Fun.protect
                  ~finally:(fun () -> close_in ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
          in
          match Dsim.Event.parse_string content with
          | Ok evs -> Some evs
          | Error err -> die (Dsim.Event.format_error ~file:path err))
    in
    let configs =
      match replay_history with
      | Some _ ->
          [| mk_config seed (List.hd profiles) (List.hd strategies) |]
      | None ->
          List.concat_map
            (fun profile ->
              List.concat_map
                (fun strategy ->
                  List.init runs (fun i ->
                      mk_config (seed + i) profile strategy))
                strategies)
            profiles
          |> Array.of_list
    in
    let outcomes =
      match replay_history with
      | Some history -> [| Dst.Harness.run ~history configs.(0) |]
      | None ->
          (* The sweep fans whole runs through the pool; per-domain
             injection arming keeps the outcomes bit-identical at any
             -j (the cram suite pins -j1 ≡ -j4). *)
          with_pool jobs @@ fun pool -> Dst.Harness.sweep ?pool configs
    in
    let violations =
      Array.fold_left
        (fun acc (o : Dst.Harness.outcome) ->
          acc + match o.Dst.Harness.violation with Some _ -> 1 | None -> 0)
        0 outcomes
    in
    (* Shrink the first violating run: regenerate (or reuse) its
       history, minimize, and write a replayable repro file. *)
    let shrink_result =
      if not (shrink && violations > 0) then None
      else
        let idx = ref (-1) in
        Array.iteri
          (fun i (o : Dst.Harness.outcome) ->
            if !idx < 0 && o.Dst.Harness.violation <> None then idx := i)
          outcomes;
        let config = configs.(!idx) in
        let v = Option.get outcomes.(!idx).Dst.Harness.violation in
        let history =
          match replay_history with
          | Some h -> h
          | None -> Dst.Harness.default_history config
        in
        let res =
          Dst.Shrink.run ~config ~history
            ~invariant:v.Dst.Harness.invariant
        in
        Dst.Shrink.write_repro ~path:repro_path ~config res;
        Some (config, res)
    in
    let violation_json (v : Dst.Harness.violation) =
      Telemetry.Json.Obj
        [
          ("invariant", Telemetry.Json.Str v.Dst.Harness.invariant);
          ("message", Telemetry.Json.Str v.Dst.Harness.message);
          ("step_index", Telemetry.Json.Int v.Dst.Harness.step_index);
          ("event", Telemetry.Json.Str v.Dst.Harness.event_line);
        ]
    in
    let outcome_json (o : Dst.Harness.outcome) =
      Telemetry.Json.Obj
        [
          ("seed", Telemetry.Json.Int o.Dst.Harness.seed);
          ("profile", Telemetry.Json.Str o.Dst.Harness.profile);
          ( "strategy",
            match o.Dst.Harness.strategy with
            | None -> Telemetry.Json.Null
            | Some nm -> Telemetry.Json.Str nm );
          ("events", Telemetry.Json.Int o.Dst.Harness.events);
          ("applied", Telemetry.Json.Int o.Dst.Harness.applied);
          ("rejected", Telemetry.Json.Int o.Dst.Harness.rejected);
          ( "injected_checks",
            Telemetry.Json.Int o.Dst.Harness.injected_checks );
          ("injected_fired", Telemetry.Json.Int o.Dst.Harness.injected_fired);
          ( "min_worst_available",
            Telemetry.Json.Int o.Dst.Harness.min_worst_available );
          ("final_live", Telemetry.Json.Int o.Dst.Harness.final_live);
          ( "final_available",
            Telemetry.Json.Int o.Dst.Harness.final_available );
          ( "final_lower_bound",
            Telemetry.Json.Int o.Dst.Harness.final_lower_bound );
          ( "violation",
            match o.Dst.Harness.violation with
            | None -> Telemetry.Json.Null
            | Some v -> violation_json v );
        ]
    in
    if json then
      print_envelope ~command:"dst"
        (Telemetry.Json.Obj
           ([
              ( "params",
                Telemetry.Json.Obj
                  [
                    ("n", Telemetry.Json.Int n);
                    ("r", Telemetry.Json.Int r);
                    ("s", Telemetry.Json.Int s);
                    ("k", Telemetry.Json.Int k);
                  ] );
              ( "config",
                Telemetry.Json.Obj
                  ([
                     ("seed", Telemetry.Json.Int seed);
                     ("runs", Telemetry.Json.Int runs);
                     ("steps", Telemetry.Json.Int steps);
                     ("measure_every", Telemetry.Json.Int measure_every);
                     ("inject_rate", Telemetry.Json.Int inject);
                     ( "profiles",
                       Telemetry.Json.List
                         (List.map
                            (fun (p : Dst.Profile.t) ->
                              Telemetry.Json.Str p.Dst.Profile.name)
                            profiles) );
                     ( "strategies",
                       Telemetry.Json.List
                         (List.map
                            (fun st ->
                              match st with
                              | None -> Telemetry.Json.Str "none"
                              | Some (module S : Placement.Strategy.S) ->
                                  Telemetry.Json.Str S.name)
                            strategies) );
                   ]
                  @ (match breaks with
                    | [] -> []
                    | _ ->
                        [
                          ( "break",
                            Telemetry.Json.List
                              (List.map
                                 (fun b -> Telemetry.Json.Str b)
                                 breaks) );
                        ])
                  @
                  match events_file with
                  | None -> []
                  | Some path -> [ ("events", Telemetry.Json.Str path) ]) );
              ( "runs",
                Telemetry.Json.List
                  (Array.to_list (Array.map outcome_json outcomes)) );
              ( "summary",
                Telemetry.Json.Obj
                  [
                    ("runs", Telemetry.Json.Int (Array.length outcomes));
                    ("violations", Telemetry.Json.Int violations);
                  ] );
            ]
           @
           match shrink_result with
           | None -> []
           | Some (_, res) ->
               [
                 ( "shrink",
                   Telemetry.Json.Obj
                     [
                       ( "invariant",
                         Telemetry.Json.Str
                           res.Dst.Shrink.violation.Dst.Harness.invariant );
                       ( "events",
                         Telemetry.Json.Int
                           (List.length res.Dst.Shrink.history) );
                       ( "candidates",
                         Telemetry.Json.Int res.Dst.Shrink.candidates );
                       ("repro", Telemetry.Json.Str repro_path);
                     ] );
               ]))
    else begin
      Fmt.pr "Deterministic simulation sweep on n=%d nodes (r=%d, s=%d, k=%d)@."
        n r s k;
      (match replay_history with
      | Some h ->
          Fmt.pr "  replaying %s (%d events)@."
            (Option.get events_file) (List.length h)
      | None ->
          Fmt.pr
            "  config: seeds %d..%d, profiles %s, strategies %s, %d steps, \
             measure every %d, inject %s@."
            seed
            (seed + runs - 1)
            (String.concat "," (List.map (fun (p : Dst.Profile.t) -> p.Dst.Profile.name) profiles))
            (String.concat ","
               (List.map
                  (function
                    | None -> "none"
                    | Some (module S : Placement.Strategy.S) -> S.name)
                  strategies))
            steps measure_every
            (if inject > 0 then Printf.sprintf "1/%d" inject else "off"));
      Array.iter
        (fun (o : Dst.Harness.outcome) ->
          Fmt.pr
            "  [seed %d %s/%s] %d events, %d applied, %d rejected, inject \
             %d/%d, min worst %d, final live=%d avail=%d lb=%d %s@."
            o.Dst.Harness.seed o.Dst.Harness.profile
            (Option.value o.Dst.Harness.strategy ~default:"none")
            o.Dst.Harness.events o.Dst.Harness.applied
            o.Dst.Harness.rejected o.Dst.Harness.injected_fired
            o.Dst.Harness.injected_checks o.Dst.Harness.min_worst_available
            o.Dst.Harness.final_live o.Dst.Harness.final_available
            o.Dst.Harness.final_lower_bound
            (match o.Dst.Harness.violation with
            | None -> "ok"
            | Some v ->
                Printf.sprintf "VIOLATION %s @ step %d: %s"
                  v.Dst.Harness.invariant v.Dst.Harness.step_index
                  v.Dst.Harness.message))
        outcomes;
      Fmt.pr "  summary: %d runs, %d violations@." (Array.length outcomes)
        violations;
      match shrink_result with
      | None -> ()
      | Some (_, res) ->
          Fmt.pr
            "  shrink: %s reproduced by %d events (%d candidates tried) -> \
             %s@."
            res.Dst.Shrink.violation.Dst.Harness.invariant
            (List.length res.Dst.Shrink.history)
            res.Dst.Shrink.candidates repro_path
    end;
    if violations > 0 then exit 1
  in
  Term.(
    const run $ n_arg $ r_arg $ s_arg $ k_arg $ seed_arg $ runs_arg
    $ steps_arg $ measure_arg $ profile_arg $ strategy_arg $ inject_arg
    $ break_arg $ shrink_flag $ repro_arg $ events_arg $ jobs_term $ io_term)

(* ------------------------------------------------------------------ *)
(* The command table: one declarative row per subcommand, so the verb
   list, help text and wiring live in one place. *)

type spec = { name : string; doc : string; term : unit Term.t }

let specs =
  [
    {
      name = "plan";
      doc = "Compute a placement plan and its availability bound.";
      term = plan_term;
    };
    {
      name = "analyze";
      doc = "Worst-case availability analysis of a strategy.";
      term = analyze_term;
    };
    {
      name = "designs";
      doc = "List the design catalogue for a given (x, r).";
      term = designs_term;
    };
    {
      name = "gap";
      doc = "Chunked capacity plan for a system size (Observation 2).";
      term = gap_term;
    };
    {
      name = "simulate";
      doc = "Materialize a placement and attack it.";
      term = simulate_term;
    };
    {
      name = "attack";
      doc =
        "Attack a layout exported with simulate --out, a strategy, or a \
         synthetic --random instance.";
      term = attack_term;
    };
    {
      name = "churn";
      doc =
        "Replay an event stream (node/domain outages, recoveries, object \
         create/delete) through the continuous placement engine, re-scoring \
         worst-case availability incrementally after every event.";
      term = churn_term;
    };
    {
      name = "serve";
      doc =
        "Run the continuous placement engine as a long-lived daemon: \
         newline-delimited events and queries in (stdin or a Unix socket), \
         one placement/v1 envelope per request out.";
      term = serve_term;
    };
    {
      name = "dst";
      doc =
        "Deterministic simulation testing: drive seeded scenario profiles \
         through the engine with fault injection armed, check the \
         invariant registry every step, and shrink any failure to a \
         replayable repro.";
      term = dst_term;
    };
    {
      name = "strategies";
      doc = "List the registered placement strategies.";
      term = strategies_term;
    };
    {
      name = "recommend";
      doc =
        "Find the cheapest replication config meeting an availability \
         target.";
      term = recommend_term;
    };
    {
      name = "topology";
      doc = "Parse a fault-domain topology spec and describe its levels.";
      term = topology_cmd_term;
    };
  ]

let main_cmd =
  let doc = "replica placement for availability in the worst case (ICDCS'15 reproduction)" in
  Cmd.group
    (Cmd.info "placement-tool" ~version:"1.0.0" ~doc)
    (List.map (fun s -> Cmd.v (Cmd.info s.name ~doc:s.doc) s.term) specs)

let () = exit (Cmd.eval main_cmd)
