(* Availability over time: continuous fail-and-repair, not one-shot.

   The paper optimizes for the worst single episode of k failures;
   operators also care about long-run SLOs under routine churn.  This
   example runs a year-long (in arbitrary units) failure/repair
   simulation over the same three placements the baseline bench compares
   — Combo, Random, Copyset — and reports time-weighted "nines".

   Node failure rate and repair speed are set so ~2 nodes are down at a
   typical instant on the 31-node cluster (a harsh environment, to make
   differences visible).

   Run with:  dune exec examples/availability_timeline.exe *)

let n = 31
let r = 3
let s = 2 (* majority quorum *)
let b = 600

(* Before the churn run: replay the worst single episode as a scripted
   trace on the same cluster.  ~restore:true hands the cluster back
   fully recovered, so the long-run simulation below starts clean
   without a manual recover_all. *)
let worst_episode name cluster layout =
  let atk = Placement.Adversary.best layout ~s ~k:3 in
  let events =
    Array.to_list atk.Placement.Adversary.failed_nodes
    |> List.concat_map (fun nd ->
           [ Dsim.Trace.Fail nd; Dsim.Trace.Measure (string_of_int nd) ])
  in
  let snaps = Dsim.Trace.replay ~restore:true cluster events in
  Printf.printf "%-10s worst episode, objects up after each failure:" name;
  List.iter
    (fun snap ->
      Printf.printf " %d (node %s down)" snap.Dsim.Trace.available
        snap.Dsim.Trace.label)
    snaps;
  print_newline ()

let simulate name layout =
  let cluster = Dsim.Cluster.create layout (Dsim.Semantics.Threshold s) in
  worst_episode name cluster layout;
  let rng = Combin.Rng.create 0x71E5 in
  let config =
    { Dsim.Repair.failure_rate = 0.01; mean_repair = 6.0; horizon = 20000.0 }
  in
  let stats = Dsim.Repair.run ~rng cluster config in
  Printf.printf
    "%-10s avg unavailable %.3f / %d; peak %d objs (%d nodes down); %d incidents; %.2f nines\n"
    name stats.Dsim.Repair.avg_unavailable b
    stats.Dsim.Repair.worst_unavailable stats.Dsim.Repair.worst_nodes_down
    stats.Dsim.Repair.incidents (Dsim.Repair.nines stats)

let () =
  Printf.printf
    "long-run churn on n=%d, b=%d, r=%d, majority quorums (same seed for all placements)\n"
    n b r;
  let inst = Placement.Instance.make ~b ~r ~s ~n ~k:3 () in
  let combo = Placement.Instance.combo_layout inst in
  simulate "combo" combo;
  let rng = Combin.Rng.create 99 in
  let random = Placement.Instance.random_layout ~rng inst in
  simulate "random" random;
  let copyset = snd (Placement.Instance.copyset ~rng inst) in
  simulate "copyset" copyset;
  Printf.printf
    "\nnote: under RANDOM failures the three placements are nearly\n\
     indistinguishable on long-run nines -- the paper's point is that the\n\
     worst-case episode (see baseline-copyset bench) is where they differ.\n"
