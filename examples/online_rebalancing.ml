(* Online placement: objects come and go.

   The paper leaves adapting placements to object churn as future work
   (Sec. IV-D); Placement.Adaptive implements it.  This example runs a
   year of simulated churn on a 71-node cluster — provisioning bursts,
   steady growth, decommissioning waves — and tracks the live worst-case
   guarantee against (a) what a from-scratch offline Combo placement
   would guarantee at each instant, and (b) the Random-placement
   baseline.

   Run with:  dune exec examples/online_rebalancing.exe *)

let n = 71
let r = 3
let s = 2
let k = 4

(* One Instance for the cluster; per-snapshot cells share its tables. *)
let base = Placement.Instance.make ~b:1 ~r ~s ~n ~k ()

let report t label =
  let size = Placement.Adaptive.size t in
  let lb = Placement.Adaptive.lower_bound t in
  let opt = Placement.Adaptive.optimal_bound t in
  let pr =
    if size = 0 then 0
    else Placement.Instance.pr_avail (Placement.Instance.with_cell base ~b:size ~k)
  in
  Printf.printf "%-28s b=%-5d guarantee=%-5d offline-optimal=%-5d random-probable=%-5d%s\n"
    label size lb opt pr
    (if lb = opt then "  (no cost of being online)" else "")

let () =
  let rng = Combin.Rng.create 0x0CEA in
  let t = Placement.Adaptive.create ~n ~r ~s ~k () in
  Printf.printf "adaptive Combo placement on n=%d nodes (r=%d, s=%d, planned k=%d)\n\n" n r s k;

  (* Initial provisioning. *)
  let live = ref [] in
  let add count =
    live := Placement.Adaptive.add_many t count @ !live
  in
  let remove_random count =
    for _ = 1 to count do
      match !live with
      | [] -> ()
      | _ ->
          let arr = Array.of_list !live in
          let victim = arr.(Combin.Rng.int rng (Array.length arr)) in
          Placement.Adaptive.remove t victim;
          live := List.filter (fun id -> id <> victim) !live
    done
  in
  add 500;
  report t "initial provisioning (500)";
  add 800;
  report t "growth burst (+800)";
  remove_random 400;
  report t "decommission wave (-400)";
  add 1500;
  report t "migration inflow (+1500)";
  remove_random 1000;
  report t "cleanup (-1000)";
  add 2000;
  report t "steady growth (+2000)";

  (* Verify the live guarantee against an actual adversary. *)
  let layout = Placement.Adaptive.layout t in
  let inst = Placement.Instance.with_cell base ~b:(Placement.Adaptive.size t) ~k in
  let attack = Placement.Instance.attack inst layout in
  Printf.printf
    "\nadversary check on the final layout: %d survive (guarantee was %d, adversary %s)\n"
    (Placement.Adversary.avail layout ~s attack)
    (Placement.Adaptive.lower_bound t)
    (if attack.Placement.Adversary.exact then "exact" else "heuristic");
  Printf.printf "effective lambda per level: %s\n"
    (String.concat ","
       (Array.to_list (Array.map string_of_int (Placement.Adaptive.lambdas t))))
