(* Quickstart: place 600 triple-replicated objects on a 31-node cluster so
   that a worst-case 3-node failure kills as few objects as possible, and
   compare against load-balanced random placement.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 600 objects, 3 replicas each, an object dies once 2 of its replicas
     do (majority quorum), and we plan for 3 simultaneous node failures.
     The Instance carries the problem parameters plus the cached design
     levels and binomial tables every call below draws from. *)
  let inst = Placement.Instance.make ~b:600 ~r:3 ~s:2 ~n:31 ~k:3 () in
  let params = Placement.Instance.params inst in

  (* 1. Ask the library for the availability-optimal Combo placement.  The
     dynamic program picks how many objects to place at each overlap level
     x (Sec. III-B of the paper). *)
  let plan = Placement.Instance.combo_config inst in
  Printf.printf "Combo plan: lower bound %d/%d objects survive any %d failures\n"
    plan.Placement.Combo.lb params.Placement.Params.b params.Placement.Params.k;
  Array.iteri
    (fun x lambda ->
      if lambda > 0 then
        Printf.printf "  level x=%d: lambda=%d, %d objects on a %s\n" x lambda
          plan.Placement.Combo.assigned.(x)
          (match plan.Placement.Combo.levels.(x).Placement.Combo.entry with
          | Some e -> e.Designs.Registry.name
          | None -> "?"))
    plan.Placement.Combo.lambdas;

  (* 2. Materialize it into an actual node assignment and attack it. *)
  let layout = Placement.Instance.combo_layout ~config:plan inst in
  let attack = Placement.Instance.attack inst layout in
  Printf.printf "adversary (%s) fails %d objects -> %d available\n"
    (if attack.Placement.Adversary.exact then "exact" else "heuristic")
    attack.Placement.Adversary.failed_objects
    (Placement.Adversary.avail layout ~s:2 attack);

  (* 3. Compare with a load-balanced random placement under the same
     worst-case adversary. *)
  let rng = Combin.Rng.create 2025 in
  let random_layout = Placement.Instance.random_layout ~rng inst in
  let random_attack = Placement.Instance.attack ~rng inst random_layout in
  Printf.printf "random placement under the same adversary: %d available\n"
    (Placement.Adversary.avail random_layout ~s:2 random_attack);
  Printf.printf "analytic prediction for random (prAvail): %d\n"
    (Placement.Instance.pr_avail inst);

  (* 4. Watch availability evolve on a live cluster as nodes fail. *)
  let cluster = Dsim.Cluster.create layout Dsim.Semantics.Majority in
  let snaps =
    Dsim.Trace.replay cluster
      [
        Dsim.Trace.Measure "t0: all 31 nodes up";
        Dsim.Trace.Fail attack.Placement.Adversary.failed_nodes.(0);
        Dsim.Trace.Measure "t1: first node down";
        Dsim.Trace.Fail attack.Placement.Adversary.failed_nodes.(1);
        Dsim.Trace.Measure "t2: second node down";
        Dsim.Trace.Fail attack.Placement.Adversary.failed_nodes.(2);
        Dsim.Trace.Measure "t3: third node down (planned worst case)";
        Dsim.Trace.Recover_all;
        Dsim.Trace.Measure "t4: recovered";
      ]
  in
  List.iter
    (fun s -> Format.printf "%a@." Dsim.Trace.pp_snapshot s)
    snaps
