(* VM fault tolerance: the paper's first motivating workload.

   VMware-FT-style VM replication runs each protected VM as a
   primary/secondary pair (r = 2); a VM dies only when BOTH its hosts die
   (s = 2).  We protect 400 VMs on a 31-host cluster and ask: if an
   attacker (or a correlated outage) takes out 2-4 specific hosts, how
   many VMs can we guarantee stay up?

   Run with:  dune exec examples/vm_fault_tolerance.exe *)

let hosts = 31
let vms = 400

let () =
  Printf.printf "== VM fault tolerance: %d primary/secondary VM pairs on %d hosts ==\n"
    vms hosts;
  let base = Placement.Instance.make ~b:vms ~r:2 ~s:2 ~n:hosts ~k:2 () in
  List.iter
    (fun k ->
      let inst = Placement.Instance.with_cell base ~b:vms ~k in
      let plan = Placement.Instance.combo_config inst in
      let layout = Placement.Instance.combo_layout ~config:plan inst in
      let attack = Placement.Instance.attack inst layout in
      let rng = Combin.Rng.create (100 + k) in
      let random_layout = Placement.Instance.random_layout ~rng inst in
      let random_attack = Placement.Instance.attack ~rng inst random_layout in
      Printf.printf
        "k=%d hosts down: combo guarantees %d up (measured %d); random placement: %d up (predicted %d)\n"
        k plan.Placement.Combo.lb
        (Placement.Adversary.avail layout ~s:2 attack)
        (Placement.Adversary.avail random_layout ~s:2 random_attack)
        (Placement.Instance.pr_avail inst))
    [ 2; 3; 4 ];

  (* Rack-correlated failure: put the 31 hosts in 8 racks of ~4 and fail
     two whole racks.  With r = 2 and s = 2 a VM dies only if both its
     hosts land in the failed racks. *)
  let inst = Placement.Instance.with_cell base ~b:vms ~k:8 in
  let plan = Placement.Instance.combo_config inst in
  let layout = Placement.Instance.combo_layout ~config:plan inst in
  let racks = Array.init hosts (fun h -> h mod 8) in
  let cluster =
    Dsim.Cluster.create ~racks layout (Dsim.Semantics.Threshold 2)
  in
  let rng = Combin.Rng.create 7 in
  let failed = Dsim.Scenario.apply ~rng cluster (Dsim.Scenario.Random_racks 2) in
  Printf.printf
    "two random racks down (%d hosts): %d / %d VMs survive on the combo layout\n"
    (Array.length failed)
    (Dsim.Cluster.available_objects cluster)
    vms;
  (* The same placement's guarantee against a targeted failure of that
     many hosts (racks are a weaker adversary than a free choice). *)
  Printf.printf "guarantee against the worst %d arbitrary hosts: %d\n"
    (Array.length failed)
    (Placement.Combo.lb_avail_co ~choose:(Placement.Instance.choose inst) plan
       ~k:(Array.length failed))
