(* Storage cluster: GFS/HDFS-style triple replication.

   A 71-node storage cluster holds 2400 chunks, each replicated 3 ways
   (the GFS/Hadoop default the paper cites).  We look at two access
   semantics for the same layout:

   - majority quorum (s = 2): a chunk is readable/writable while 2 of 3
     replicas live;
   - read-any (s = 3): a chunk is readable while any replica lives.

   The worst k failures differ per semantics, so we evaluate both.

   Run with:  dune exec examples/storage_cluster.exe *)

let nodes = 71
let chunks = 2400

let evaluate name layout =
  Printf.printf "-- %s --\n" name;
  List.iter
    (fun (sem, s) ->
      List.iter
        (fun k ->
          let attack = Placement.Adversary.best layout ~s ~k in
          Printf.printf "  %-22s k=%d: %4d / %d chunks survive (%s adversary)\n"
            (Dsim.Semantics.describe sem) k
            (Placement.Adversary.avail layout ~s attack)
            chunks
            (if attack.Placement.Adversary.exact then "exact" else "heuristic"))
        [ 3; 5 ])
    [ (Dsim.Semantics.Majority, 2); (Dsim.Semantics.Read_any, 3) ]

let () =
  Printf.printf "== %d chunks, r=3, on %d storage nodes ==\n" chunks nodes;

  (* Combo placement optimized for majority quorums and 5 failures. *)
  let inst = Placement.Instance.make ~b:chunks ~r:3 ~s:2 ~n:nodes ~k:5 () in
  let plan = Placement.Instance.combo_config inst in
  Printf.printf
    "combo plan (s=2, k=5): lower bound %d; lambda per level: %s\n"
    plan.Placement.Combo.lb
    (String.concat ","
       (Array.to_list (Array.map string_of_int plan.Placement.Combo.lambdas)));
  let combo_layout = Placement.Instance.combo_layout ~config:plan inst in
  evaluate "combo (STS-based) placement" combo_layout;

  let rng = Combin.Rng.create 11 in
  let random_layout = Placement.Instance.random_layout ~rng inst in
  evaluate "load-balanced random placement" random_layout;

  (* Maintenance what-if: drain two specific nodes for an upgrade.  The
     cluster model answers which chunks lose quorum. *)
  let cluster = Dsim.Cluster.create combo_layout Dsim.Semantics.Majority in
  Dsim.Cluster.fail_node cluster 12;
  Dsim.Cluster.fail_node cluster 40;
  let degraded = Dsim.Cluster.unavailable_objects cluster in
  Printf.printf
    "draining nodes 12 and 40 for maintenance: %d chunks lose majority%s\n"
    (List.length degraded)
    (if degraded = [] then " (safe to proceed)" else "");
  Dsim.Cluster.recover_all cluster
