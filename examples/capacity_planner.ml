(* Capacity planner: a what-if sweep for an operator choosing replication
   settings.

   For a fixed fleet (n = 257 nodes) and object count (b = 9600), sweep
   the replication factor r, fatality threshold s, and planned failure
   count k, and print the guaranteed (Combo) and probable (Random)
   availability side by side — the table an operator would consult to
   decide how much replication buys how much worst-case safety.

   Run with:  dune exec examples/capacity_planner.exe *)

let n = 257
let b = 9600

let () =
  Printf.printf
    "fleet: n=%d nodes, b=%d objects; entries are objects surviving the worst k failures\n"
    n b;
  Printf.printf "%-14s %-6s %-22s %-22s\n" "config" "k" "combo (guaranteed)"
    "random (probable)";
  List.iter
    (fun (r, s, label) ->
      (* One Instance per (r, s) row: its design levels and binomial
         tables are shared by the whole k sweep via O(1) with_cell. *)
      let base = Placement.Instance.make ~b ~r ~s ~n ~k:s () in
      List.iter
        (fun k ->
          if k >= s then begin
            let inst = Placement.Instance.with_cell base ~b ~k in
            let plan = Placement.Instance.combo_config inst in
            let pr = Placement.Instance.pr_avail inst in
            Printf.printf "%-14s k=%-4d %-22s %-22s%s\n" label k
              (Printf.sprintf "%d (%.2f%%)" plan.Placement.Combo.lb
                 (100.0 *. float_of_int plan.Placement.Combo.lb /. float_of_int b))
              (Printf.sprintf "%d (%.2f%%)" pr
                 (100.0 *. float_of_int pr /. float_of_int b))
              (if plan.Placement.Combo.lb > pr then "  <- combo wins"
               else if plan.Placement.Combo.lb < pr then "  <- random wins"
               else "")
          end)
        [ 2; 4; 6; 8 ])
    [
      (2, 2, "r=2 mirror");
      (3, 2, "r=3 majority");
      (3, 3, "r=3 read-any");
      (4, 2, "r=4 quorum");
      (5, 3, "r=5 majority");
    ];
  (* How sensitive is the r=5 majority plan to the planned k? *)
  let inst = Placement.Instance.make ~b ~r:5 ~s:3 ~n ~k:6 () in
  let plan = Placement.Instance.combo_config inst in
  Printf.printf
    "\nsensitivity of the r=5 s=3 plan (configured for k=6) to the actual k:\n";
  List.iter
    (fun k ->
      Printf.printf "  actual k=%d: bound %d\n" k
        (Placement.Combo.lb_avail_co ~choose:(Placement.Instance.choose inst) plan ~k))
    [ 4; 5; 6; 7; 8; 10 ]
